// Package pointsto implements an Andersen-style inclusion-based
// points-to analysis (§5.1.2 of the paper) over MiniLang IR, in
// context-insensitive and context-sensitive variants with heap
// cloning, plus the predicated variants that assume likely invariants:
//
//   - likely-unreachable code prunes whole blocks from the constraint
//     graph;
//   - likely callee sets replace pts-driven indirect-call resolution
//     with the profiled target sets;
//   - likely-unused call contexts (via a restricted ctxs.Tree) stop
//     the context-sensitive analysis from cloning unrealized call
//     chains.
//
// The abstract object space is: one object per global array/scalar
// (field-insensitive over arrays), one heap object per allocation site
// (per allocation site and calling context when the tree is sensitive
// — heap cloning), and one object per function (function values).
// Points-to sets are bitsets over object ids; the paper tracks these
// with BDDs, an equivalent set representation.
package pointsto

import (
	"fmt"
	"sort"

	"oha/internal/bitset"
	"oha/internal/ctxs"
	"oha/internal/invariants"
	"oha/internal/ir"
)

// ObjKind classifies abstract objects.
type ObjKind uint8

// Object kinds.
const (
	ObjGlobal ObjKind = iota // a global scalar or array group
	ObjHeap                  // an allocation site (× context if CS)
	ObjFunc                  // a function value
)

// Object describes one abstract object.
type Object struct {
	Kind ObjKind
	// Global group leader ID (ObjGlobal), allocation-site instr ID
	// (ObjHeap), or function ID (ObjFunc).
	Key int
	Ctx ctxs.ID // allocating context for cloned heap objects (-1 if n/a)
}

func (o Object) String() string {
	switch o.Kind {
	case ObjGlobal:
		return fmt.Sprintf("glob(%d)", o.Key)
	case ObjHeap:
		if o.Ctx >= 0 {
			return fmt.Sprintf("heap(%d@%d)", o.Key, o.Ctx)
		}
		return fmt.Sprintf("heap(%d)", o.Key)
	}
	return fmt.Sprintf("func(%d)", o.Key)
}

// Analysis runs the solver; use Analyze.
type analysis struct {
	prog *ir.Program
	tree *ctxs.Tree
	db   *invariants.DB // nil: sound analysis

	// Abstract objects.
	objs      []Object
	objIntern map[Object]int
	funcObj   []int // function ID -> object ID
	globObj   map[int]int

	// Node space: per-context register nodes + a return node, plus one
	// content node per object.
	ctxBase   map[ctxs.ID]int
	contentOf map[int]int // object ID -> its content node
	nNodes    int
	pts       []*bitset.Set
	// sharedPts marks pts entries still shared with the resume parent
	// (copy-on-write: clone shares every saturated set and a set is
	// copied only when the refinement delta actually grows it). nil
	// outside resumed analyses; nodes created after the clone sit past
	// its end and are never shared.
	sharedPts  []bool
	copyTo     [][]int // copy edges
	loadUsers  [][]int // addr node -> dst nodes of loads through it
	storeSrcs  [][]src // addr node -> value sources of stores through it
	lockSites  []bool  // addr nodes used by lock/unlock (for diagnostics)
	callUsers  [][]callSite
	seededCtx  map[ctxs.ID]bool
	work       []int
	inWork     []bool
	callEdges  map[callKey]bool
	fnCallees  map[int]map[int]bool // call-site instr ID -> callee fn IDs
	ctxCallees map[callKey2][]ctxs.ID
	seeded     []*ir.Instr // instructions included in the analysis (deduped)
	seenInstr  map[int]bool

	// siteCtxs is the fact -> constraint dependency index for call
	// sites: the contexts whose constraints mention each call/spawn
	// site. Incremental re-analysis consults it when a callee-set fact
	// is removed (widened), so only the constraints that mentioned the
	// site are re-seeded; block facts use seededCtx the same way.
	siteCtxs map[int][]ctxs.ID
	// nSeedings counts constraint seedings (seedInstr calls). An
	// incremental resume inherits the base run's count, so
	// prev/new is the fraction of constraints reused.
	nSeedings int
}

// src is a points-to "source": a node or a constant object.
type src struct {
	node int // -1 if none
	obj  int // -1 if none
}

type callSite struct {
	ctx ctxs.ID
	in  *ir.Instr
}

type callKey struct {
	site   int
	callee int
}

type callKey2 struct {
	ctx  ctxs.ID
	site int
}

// Result is the outcome of a points-to analysis.
type Result struct {
	Prog *ir.Program
	Tree *ctxs.Tree
	a    *analysis
}

// Analyze runs the points-to analysis for prog over the given context
// tree. db non-nil selects the predicated variant assuming those
// likely invariants. The only error is ctxs.ErrBudget, meaning a
// context-sensitive analysis did not scale to this program.
func Analyze(prog *ir.Program, tree *ctxs.Tree, db *invariants.DB) (*Result, error) {
	a := newAnalysis(prog, tree, db)
	if err := a.solve(); err != nil {
		return nil, err
	}
	return &Result{Prog: prog, Tree: tree, a: a}, nil
}

func newAnalysis(prog *ir.Program, tree *ctxs.Tree, db *invariants.DB) *analysis {
	a := &analysis{
		prog:       prog,
		tree:       tree,
		db:         db,
		objIntern:  map[Object]int{},
		globObj:    map[int]int{},
		ctxBase:    map[ctxs.ID]int{},
		contentOf:  map[int]int{},
		seededCtx:  map[ctxs.ID]bool{},
		callEdges:  map[callKey]bool{},
		fnCallees:  map[int]map[int]bool{},
		ctxCallees: map[callKey2][]ctxs.ID{},
		seenInstr:  map[int]bool{},
		siteCtxs:   map[int][]ctxs.ID{},
	}
	a.funcObj = make([]int, len(prog.Funcs))
	for i := range a.funcObj {
		a.funcObj[i] = -1
	}
	return a
}

func (a *analysis) newNode() int {
	a.nNodes++
	a.pts = append(a.pts, &bitset.Set{})
	a.copyTo = append(a.copyTo, nil)
	a.loadUsers = append(a.loadUsers, nil)
	a.storeSrcs = append(a.storeSrcs, nil)
	a.callUsers = append(a.callUsers, nil)
	a.inWork = append(a.inWork, false)
	return a.nNodes - 1
}

// base returns the first node of a context's register file, allocating
// the block (plus the return node) on first use.
func (a *analysis) base(c ctxs.ID) int {
	if b, ok := a.ctxBase[c]; ok {
		return b
	}
	fn := a.tree.FnOf(c)
	b := a.nNodes
	for i := 0; i <= len(fn.Vars); i++ { // +1: return node
		a.newNode()
	}
	a.ctxBase[c] = b
	return b
}

func (a *analysis) varNode(c ctxs.ID, v *ir.Var) int { return a.base(c) + v.ID }

func (a *analysis) retNode(c ctxs.ID) int {
	return a.base(c) + len(a.tree.FnOf(c).Vars)
}

// object interns an abstract object and returns its id.
func (a *analysis) object(o Object) int {
	if id, ok := a.objIntern[o]; ok {
		return id
	}
	id := len(a.objs)
	a.objs = append(a.objs, o)
	a.objIntern[o] = id
	return id
}

func (a *analysis) globalObject(g *ir.Global) int {
	if id, ok := a.globObj[g.Group]; ok {
		return id
	}
	id := a.object(Object{Kind: ObjGlobal, Key: g.Group, Ctx: -1})
	a.globObj[g.Group] = id
	return id
}

func (a *analysis) functionObject(f *ir.Function) int {
	if a.funcObj[f.ID] == -1 {
		a.funcObj[f.ID] = a.object(Object{Kind: ObjFunc, Key: f.ID, Ctx: -1})
	}
	return a.funcObj[f.ID]
}

// content returns the content node of an object (what its cells hold).
func (a *analysis) content(obj int) int {
	if n, ok := a.contentOf[obj]; ok {
		return n
	}
	n := a.newNode()
	a.contentOf[obj] = n
	return n
}

func (a *analysis) push(n int) {
	if !a.inWork[n] {
		a.inWork[n] = true
		a.work = append(a.work, n)
	}
}

// mutPts returns pts[n] for mutation, un-sharing it first if it is
// still shared with the resume parent.
func (a *analysis) mutPts(n int) *bitset.Set {
	if n < len(a.sharedPts) && a.sharedPts[n] {
		a.pts[n] = a.pts[n].Clone()
		a.sharedPts[n] = false
	}
	return a.pts[n]
}

// addObj seeds object o into node n's points-to set.
func (a *analysis) addObj(n, o int) {
	if a.mutPts(n).Add(o) {
		a.push(n)
	}
}

// copyEdge adds n -> m and propagates current contents.
func (a *analysis) copyEdge(n, m int) {
	a.copyTo[n] = append(a.copyTo[n], m)
	if a.mutPts(m).UnionChanged(a.pts[n]) {
		a.push(m)
	}
}

// operandSrc converts an operand in context c into a source.
func (a *analysis) operandSrc(c ctxs.ID, op ir.Operand) src {
	switch op.Kind {
	case ir.OperVar:
		return src{node: a.varNode(c, op.Var), obj: -1}
	case ir.OperGlobal:
		return src{node: -1, obj: a.globalObject(op.Global)}
	case ir.OperFunc:
		return src{node: -1, obj: a.functionObject(op.Func)}
	}
	return src{node: -1, obj: -1}
}

// flowTo wires a source into a destination node.
func (a *analysis) flowTo(s src, dst int) {
	if s.node >= 0 {
		a.copyEdge(s.node, dst)
	}
	if s.obj >= 0 {
		a.addObj(dst, s.obj)
	}
}

// skipBlock reports whether the predicated analysis prunes this block
// (likely-unreachable code).
func (a *analysis) skipBlock(b *ir.Block) bool {
	return a.db != nil && a.db.LikelyUnreachable(b.ID)
}

// seedCtx adds the constraints of every (non-pruned) instruction of
// one function clone.
func (a *analysis) seedCtx(c ctxs.ID) error {
	if a.seededCtx[c] {
		return nil
	}
	a.seededCtx[c] = true
	fn := a.tree.FnOf(c)
	for _, b := range fn.Blocks {
		if a.skipBlock(b) {
			continue
		}
		for _, in := range b.Instrs {
			if !a.seenInstr[in.ID] {
				a.seenInstr[in.ID] = true
				a.seeded = append(a.seeded, in)
			}
			if err := a.seedInstr(c, in); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *analysis) seedInstr(c ctxs.ID, in *ir.Instr) error {
	a.nSeedings++
	switch in.Op {
	case ir.OpCopy:
		a.flowTo(a.operandSrc(c, in.A), a.varNode(c, in.Dst))
	case ir.OpBin:
		// Pointer arithmetic: only +/- can carry a pointer through.
		if in.Bin == ir.BinAdd || in.Bin == ir.BinSub {
			a.flowTo(a.operandSrc(c, in.A), a.varNode(c, in.Dst))
			a.flowTo(a.operandSrc(c, in.B), a.varNode(c, in.Dst))
		}
	case ir.OpAlloc:
		octx := ctxs.ID(-1)
		if a.tree.Sensitive() {
			octx = c // heap cloning
		}
		obj := a.object(Object{Kind: ObjHeap, Key: in.ID, Ctx: octx})
		a.addObj(a.varNode(c, in.Dst), obj)
	case ir.OpLoad:
		dst := a.varNode(c, in.Dst)
		s := a.operandSrc(c, in.A)
		if s.obj >= 0 { // load directly from a global
			a.copyEdge(a.content(s.obj), dst)
		}
		if s.node >= 0 {
			a.loadUsers[s.node] = append(a.loadUsers[s.node], dst)
			a.pts[s.node].ForEach(func(o int) bool {
				a.copyEdge(a.content(o), dst)
				return true
			})
		}
	case ir.OpStore:
		val := a.operandSrc(c, in.B)
		addr := a.operandSrc(c, in.A)
		if addr.obj >= 0 {
			a.flowTo(val, a.content(addr.obj))
		}
		if addr.node >= 0 {
			a.storeSrcs[addr.node] = append(a.storeSrcs[addr.node], val)
			a.pts[addr.node].ForEach(func(o int) bool {
				a.flowTo(val, a.content(o))
				return true
			})
		}
	case ir.OpCall, ir.OpSpawn:
		a.siteCtxs[in.ID] = append(a.siteCtxs[in.ID], c)
		if in.Callee != nil {
			return a.wireCall(c, in, in.Callee)
		}
		// Indirect. Predicated with the likely-callee-sets invariant
		// enabled (a non-nil Callees map): use the profiled target set
		// only. A nil map means the invariant is disabled (ablation
		// studies) and resolution falls through to the sound
		// points-to-driven mechanism below.
		if a.db != nil && a.db.Callees != nil {
			if set, ok := a.db.Callees[in.ID]; ok {
				var err error
				set.ForEach(func(fid int) bool {
					err = a.wireCall(c, in, a.prog.Funcs[fid])
					return err == nil
				})
				return err
			}
			return nil // never observed: prune (checked at runtime)
		}
		s := a.operandSrc(c, in.A)
		if s.node >= 0 {
			a.callUsers[s.node] = append(a.callUsers[s.node], callSite{ctx: c, in: in})
			var err error
			a.pts[s.node].ForEach(func(o int) bool {
				if a.objs[o].Kind == ObjFunc {
					err = a.wireCall(c, in, a.prog.Funcs[a.objs[o].Key])
				}
				return err == nil
			})
			return err
		}
		if s.obj >= 0 && a.objs[s.obj].Kind == ObjFunc {
			return a.wireCall(c, in, a.prog.Funcs[a.objs[s.obj].Key])
		}
	case ir.OpRet:
		a.flowTo(a.operandSrc(c, in.A), a.retNode(c))
	}
	return nil
}

// wireCall connects a call edge: extends the context tree, seeds the
// callee, and wires arguments and the return value.
func (a *analysis) wireCall(c ctxs.ID, in *ir.Instr, callee *ir.Function) error {
	if len(in.Args) != len(callee.Params) {
		return nil // would trap at runtime; no data flow
	}
	key := callKey{site: in.ID, callee: callee.ID}
	ck2 := callKey2{ctx: c, site: in.ID}
	calleeCtx, status, err := a.tree.Extend(c, in, callee)
	if err != nil {
		return err
	}
	if status == ctxs.Pruned {
		return nil
	}
	already := false
	for _, prev := range a.ctxCallees[ck2] {
		if prev == calleeCtx {
			already = true
			break
		}
	}
	if already {
		return nil
	}
	a.ctxCallees[ck2] = append(a.ctxCallees[ck2], calleeCtx)
	a.callEdges[key] = true
	m := a.fnCallees[in.ID]
	if m == nil {
		m = map[int]bool{}
		a.fnCallees[in.ID] = m
	}
	m[callee.ID] = true

	if err := a.seedCtx(calleeCtx); err != nil {
		return err
	}
	for i, p := range callee.Params {
		a.flowTo(a.operandSrc(c, in.Args[i]), a.varNode(calleeCtx, p))
	}
	if in.Op == ir.OpCall && in.Dst != nil {
		a.copyEdge(a.retNode(calleeCtx), a.varNode(c, in.Dst))
	}
	return nil
}

func (a *analysis) solve() error {
	if err := a.seedCtx(a.tree.Root()); err != nil {
		return err
	}
	if err := a.drain(); err != nil {
		return err
	}
	a.finish()
	return nil
}

// drain runs the worklist to saturation.
func (a *analysis) drain() error {
	for len(a.work) > 0 {
		n := a.work[len(a.work)-1]
		a.work = a.work[:len(a.work)-1]
		a.inWork[n] = false
		if err := a.processNode(n); err != nil {
			return err
		}
	}
	return nil
}

// processNode propagates node n's points-to set through its copy,
// load, store, and indirect-call constraints.
func (a *analysis) processNode(n int) error {
	np := a.pts[n]

	// Copy successors.
	for _, m := range a.copyTo[n] {
		if a.mutPts(m).UnionChanged(np) {
			a.push(m)
		}
	}
	return a.processDeref(n)
}

// processDeref handles node n's dereference constraints — loads,
// stores, and indirect calls — which may allocate content nodes,
// extend the context tree, and seed new constraints. The parallel
// solver runs copy propagation concurrently but always funnels these
// through one goroutine in deterministic order.
func (a *analysis) processDeref(n int) error {
	np := a.pts[n]

	// Loads through n: dst gets contents of all pointees.
	if users := a.loadUsers[n]; users != nil {
		np.ForEach(func(o int) bool {
			cn := a.content(o)
			for _, dst := range users {
				a.copyEdge(cn, dst)
			}
			return true
		})
	}
	// Stores through n: pointee contents get sources.
	if srcs := a.storeSrcs[n]; srcs != nil {
		np.ForEach(func(o int) bool {
			cn := a.content(o)
			for _, s := range srcs {
				a.flowTo(s, cn)
			}
			return true
		})
	}
	// Indirect calls through n.
	if sites := a.callUsers[n]; sites != nil {
		var err error
		np.ForEach(func(o int) bool {
			if a.objs[o].Kind != ObjFunc {
				return true
			}
			f := a.prog.Funcs[a.objs[o].Key]
			for _, cs := range sites {
				if err = a.wireCall(cs.ctx, cs.in, f); err != nil {
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// finish canonicalizes order-dependent state once the fixpoint is
// reached: the seeded-instruction list is sorted by instruction ID so
// sequential, parallel, and resumed solves expose identical instruction
// order to clients (the static race detector enumerates access pairs in
// this order — keeping it canonical keeps race-pair lists bit-identical
// across solver variants).
func (a *analysis) finish() {
	// A resumed analysis that seeded nothing new still shares the
	// parent's (already sorted) slice; sorting it in place would write
	// into the parent's backing array, so only sort when needed — any
	// append has already reallocated the slice (its capacity is capped
	// at clone time).
	less := func(i, j int) bool { return a.seeded[i].ID < a.seeded[j].ID }
	if !sort.SliceIsSorted(a.seeded, less) {
		sort.Slice(a.seeded, less)
	}
}
