package staticslice

import (
	"testing"

	"oha/internal/ctxs"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/lang"
	"oha/internal/pointsto"
	"oha/internal/profile"
)

// build compiles src and returns a slicer (CI, sound unless db given).
func build(t *testing.T, src string, sensitive bool, db *invariants.DB) *Slicer {
	t.Helper()
	p := lang.MustCompile(src)
	return buildProg(t, p, sensitive, db)
}

func buildProg(t *testing.T, p *ir.Program, sensitive bool, db *invariants.DB) *Slicer {
	t.Helper()
	var tree *ctxs.Tree
	if sensitive {
		var allowed *invariants.ContextSet
		if db != nil {
			allowed = db.Contexts
		}
		tree = ctxs.NewCS(p, 0, allowed)
	} else {
		tree = ctxs.NewCI(p)
	}
	pt, err := pointsto.Analyze(p, tree, db)
	if err != nil {
		t.Fatal(err)
	}
	return New(pt)
}

// printInstr returns the i-th print instruction.
func printInstr(t *testing.T, p *ir.Program, i int) *ir.Instr {
	t.Helper()
	n := 0
	for _, in := range p.Instrs {
		if in.Op == ir.OpPrint {
			if n == i {
				return in
			}
			n++
		}
	}
	t.Fatalf("print %d not found", i)
	return nil
}

// fnInstrs reports how many sliced instructions live in fn.
func fnInstrs(s *Slice, fn *ir.Function) int {
	n := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if s.Instrs.Has(in.ID) {
				n++
			}
		}
	}
	return n
}

func TestStraightLineSlice(t *testing.T) {
	sl := build(t, `
		func main() {
			var a = 1;
			var b = 2;
			var c = a + 3;
			var d = b * b;   // irrelevant to c
			print(c);
			print(d);
		}
	`, false, nil)
	p := sl.prog
	s := sl.BackwardSlice(printInstr(t, p, 0))
	// The slice of print(c) must include a's and c's defs but not b/d.
	main := p.Main()
	var aDef, dDef *ir.Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != nil && in.Dst.Name == "a" {
				aDef = in
			}
			if in.Dst != nil && in.Dst.Name == "d" {
				dDef = in
			}
		}
	}
	if !s.Contains(aDef) {
		t.Error("slice of print(c) missing def of a")
	}
	if s.Contains(dDef) {
		t.Error("slice of print(c) contains unrelated def of d")
	}
}

func TestSliceThroughMemory(t *testing.T) {
	sl := build(t, `
		global g = 0;
		global h = 0;
		func main() {
			g = 5;
			h = 6;
			print(g);
		}
	`, false, nil)
	p := sl.prog
	s := sl.BackwardSlice(printInstr(t, p, 0))
	var storeG, storeH *ir.Instr
	for _, in := range p.Instrs {
		if in.Op == ir.OpStore {
			if in.A.Global.Name == "g" {
				storeG = in
			} else {
				storeH = in
			}
		}
	}
	if !s.Contains(storeG) {
		t.Error("aliasing store missing from slice")
	}
	if s.Contains(storeH) {
		t.Error("non-aliasing store in slice")
	}
}

func TestFlowSensitivity(t *testing.T) {
	// A store *after* the load (no loop) cannot be in the slice.
	sl := build(t, `
		global g = 0;
		func main() {
			g = 1;
			print(g);
			g = 2;
		}
	`, false, nil)
	p := sl.prog
	s := sl.BackwardSlice(printInstr(t, p, 0))
	stores := 0
	for _, in := range p.Instrs {
		if in.Op == ir.OpStore && s.Contains(in) {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("slice contains %d stores, want 1 (later store excluded)", stores)
	}
}

func TestLoopStoresIncluded(t *testing.T) {
	// In a loop, a textually-later store may precede the load.
	sl := build(t, `
		global g = 0;
		func main() {
			var i = 0;
			while (i < 3) {
				print(g);
				g = g + 1;
				i = i + 1;
			}
		}
	`, false, nil)
	p := sl.prog
	s := sl.BackwardSlice(printInstr(t, p, 0))
	found := false
	for _, in := range p.Instrs {
		if in.Op == ir.OpStore && in.A.Kind == ir.OperGlobal && s.Contains(in) {
			found = true
		}
	}
	if !found {
		t.Error("loop-carried store missing from slice")
	}
}

func TestInterproceduralSlice(t *testing.T) {
	sl := build(t, `
		func double(x) { return x * 2; }
		func main() {
			var a = 3;
			var b = double(a);
			print(b);
		}
	`, false, nil)
	p := sl.prog
	s := sl.BackwardSlice(printInstr(t, p, 0))
	dbl := p.FuncByName["double"]
	if fnInstrs(s, dbl) == 0 {
		t.Error("callee instructions missing from slice")
	}
	// a's def must be reached through the call's argument.
	var aDef *ir.Instr
	for _, in := range p.Instrs {
		if in.Dst != nil && in.Dst.Name == "a" {
			aDef = in
		}
	}
	if !s.Contains(aDef) {
		t.Error("argument def missing from slice")
	}
}

const ciVsCsSrc = `
	func id(x) { return x; }
	func main() {
		var tainted = input(0);
		var clean = 7;
		var a = id(tainted);
		var b = id(clean);
		print(b);
	}
`

func TestCSMorePreciseThanCI(t *testing.T) {
	pCI := lang.MustCompile(ciVsCsSrc)
	ci := buildProg(t, pCI, false, nil)
	sCI := ci.BackwardSlice(printInstr(t, pCI, 0))

	pCS := lang.MustCompile(ciVsCsSrc)
	cs := buildProg(t, pCS, true, nil)
	sCS := cs.BackwardSlice(printInstr(t, pCS, 0))

	// CI merges id's two call sites: tainted's def leaks into the
	// slice of print(b). CS keeps them apart.
	var taintedDef *ir.Instr
	for _, in := range pCI.Instrs {
		if in.Op == ir.OpInput {
			taintedDef = in
		}
	}
	if !sCI.Contains(taintedDef) {
		t.Error("CI slice unexpectedly precise (test assumption broken)")
	}
	var taintedDefCS *ir.Instr
	for _, in := range pCS.Instrs {
		if in.Op == ir.OpInput {
			taintedDefCS = in
		}
	}
	if sCS.Contains(taintedDefCS) {
		t.Error("CS slice merged call sites")
	}
	if sCS.Size() >= sCI.Size() {
		t.Errorf("CS slice (%d) not smaller than CI slice (%d)", sCS.Size(), sCI.Size())
	}
}

func TestSpawnArgsInSlice(t *testing.T) {
	sl := build(t, `
		global out = 0;
		func w(v) { out = v; }
		func main() {
			var secret = input(0);
			var t = spawn w(secret);
			join(t);
			print(out);
		}
	`, false, nil)
	p := sl.prog
	s := sl.BackwardSlice(printInstr(t, p, 0))
	var inputDef *ir.Instr
	for _, in := range p.Instrs {
		if in.Op == ir.OpInput {
			inputDef = in
		}
	}
	if !s.Contains(inputDef) {
		t.Error("value flowing through spawned thread missing from slice")
	}
}

func TestPredicatedSliceSmaller(t *testing.T) {
	src := `
		global g = 0;
		func rare() { g = input(1) * 100; }
		func common() { g = 1; }
		func main() {
			if (input(0)) { rare(); } else { common(); }
			print(g);
		}
	`
	p := lang.MustCompile(src)
	sound := buildProg(t, p, false, nil)
	sSound := sound.BackwardSlice(printInstr(t, p, 0))

	db, err := profile.Run(p, []int64{0}, 1) // only common() profiled
	if err != nil {
		t.Fatal(err)
	}
	pred := buildProg(t, p, false, db)
	sPred := pred.BackwardSlice(printInstr(t, p, 0))

	rare := p.FuncByName["rare"]
	if fnInstrs(sSound, rare) == 0 {
		t.Error("sound slice missing rare()")
	}
	if fnInstrs(sPred, rare) != 0 {
		t.Error("predicated slice contains likely-unreachable rare()")
	}
	if !sPred.Instrs.SubsetOf(sSound.Instrs) {
		t.Error("predicated slice not a subset of sound slice")
	}
}

func TestPredicatedCalleeSetShrinksSlice(t *testing.T) {
	src := `
		global fp = 0;
		global g = 0;
		func fa() { g = 1; }
		func fb() { g = input(1); }
		func main() {
			fp = fa;
			if (input(0)) { fp = fb; }
			var h = fp;
			h();
			print(g);
		}
	`
	p := lang.MustCompile(src)
	sound := buildProg(t, p, false, nil)
	sSound := sound.BackwardSlice(printInstr(t, p, 0))
	fb := p.FuncByName["fb"]
	if fnInstrs(sSound, fb) == 0 {
		t.Error("sound slice missing fb")
	}
	db, err := profile.Run(p, []int64{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred := buildProg(t, p, false, db)
	sPred := pred.BackwardSlice(printInstr(t, p, 0))
	if fnInstrs(sPred, fb) != 0 {
		t.Error("predicated slice contains unobserved callee fb")
	}
}

func TestNonTrivialEndpoints(t *testing.T) {
	sl := build(t, `
		global g = 0;
		func step(x) { return x + g; }
		func main() {
			var acc = 0;
			var i = 0;
			while (i < 4) {
				g = g + i;
				acc = step(acc);
				i = i + 1;
			}
			print(acc);
			print(0);
		}
	`, false, nil)
	eps := sl.NonTrivialEndpoints(10)
	if len(eps) == 0 {
		t.Fatal("no non-trivial endpoints found")
	}
	// print(0) must not be a non-trivial endpoint.
	for _, e := range eps {
		if e.Op == ir.OpPrint && e.A.Kind == ir.OperConst {
			t.Error("constant print counted as non-trivial")
		}
	}
}

func TestSliceDeterminism(t *testing.T) {
	for i := 0; i < 3; i++ {
		sl := build(t, ciVsCsSrc, true, nil)
		s1 := sl.BackwardSlice(printInstr(t, sl.prog, 0))
		s2 := sl.BackwardSlice(printInstr(t, sl.prog, 0))
		if !s1.Instrs.Equal(s2.Instrs) {
			t.Fatal("same slicer, different slices")
		}
	}
}
