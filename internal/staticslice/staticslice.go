// Package staticslice implements Weiser-style static backward slicing
// (§5.1.1 of the paper) over MiniLang IR.
//
// The slicer computes data-flow slices (no control dependencies, as
// OptSlice does) by building a backward definition-use graph lazily
// from the slice criterion and closing over it:
//
//   - register uses depend on the reaching definitions of the register
//     (restricted flow-sensitively to defs that may precede the use);
//   - loads additionally depend on aliasing stores (via the points-to
//     analysis), again restricted to stores in blocks that may precede
//     the load when both are in the same function;
//   - parameters depend on the call/spawn sites that bind them, and
//     call results depend on the callee's return instructions —
//     context-sensitively when the points-to result was computed over
//     a context-sensitive tree.
//
// The visited-node set is a bitset (the paper uses BDDs for the same
// purpose). Predication comes in through the points-to result: a
// predicated points-to analysis has already pruned likely-unreachable
// blocks, unobserved indirect-call targets, and unobserved call
// contexts, and the slicer only walks what that analysis saw.
package staticslice

import (
	"oha/internal/bitset"
	"oha/internal/ctxs"
	"oha/internal/ir"
	"oha/internal/pointsto"
)

// Slice is the result of one backward slice.
type Slice struct {
	// Instrs holds the instruction IDs in the slice (context-collapsed).
	Instrs *bitset.Set
	// Nodes is the number of (context, instruction) DUG nodes visited.
	Nodes int
	// Criterion is the slice endpoint.
	Criterion *ir.Instr
}

// Size returns the number of distinct instructions in the slice.
func (s *Slice) Size() int { return s.Instrs.Len() }

// Contains reports whether an instruction is in the slice.
func (s *Slice) Contains(in *ir.Instr) bool { return s.Instrs.Has(in.ID) }

// Slicer answers backward-slice queries against one points-to result.
// Building a Slicer precomputes the def and memory indexes; individual
// slices are then cheap.
type Slicer struct {
	prog  *ir.Program
	pt    *pointsto.Result
	reach *ir.Reach

	// defs[fnID][varID] = defining instructions of that register.
	defs map[int]map[int][]*ir.Instr
	// stores = analyzed store nodes with their address points-to sets.
	stores []storeNode
	// callersOf[calleeCtx] = call edges targeting that context.
	callersOf map[ctxs.ID][]pointsto.CallEdge
	// retsOf[fnID] = return instructions of the function.
	retsOf map[int][]*ir.Instr
}

type storeNode struct {
	ctx  ctxs.ID
	in   *ir.Instr
	addr *bitset.Set
}

// New builds a slicer over a points-to result (sound or predicated,
// context-sensitive or -insensitive — the slicer inherits whichever
// discipline pt used).
func New(pt *pointsto.Result) *Slicer {
	s := &Slicer{
		prog:      pt.Prog,
		pt:        pt,
		reach:     ir.ComputeReach(pt.Prog),
		defs:      map[int]map[int][]*ir.Instr{},
		callersOf: map[ctxs.ID][]pointsto.CallEdge{},
		retsOf:    map[int][]*ir.Instr{},
	}
	for _, in := range pt.SeededInstrs() {
		fn := in.Block.Fn
		if in.Dst != nil {
			m := s.defs[fn.ID]
			if m == nil {
				m = map[int][]*ir.Instr{}
				s.defs[fn.ID] = m
			}
			m[in.Dst.ID] = append(m[in.Dst.ID], in)
		}
		switch in.Op {
		case ir.OpStore:
			for _, c := range pt.Tree.CtxsOf(fn) {
				s.stores = append(s.stores, storeNode{ctx: c, in: in, addr: pt.AddrPts(c, in)})
			}
		case ir.OpRet:
			s.retsOf[fn.ID] = append(s.retsOf[fn.ID], in)
		}
	}
	for _, e := range pt.CallEdges() {
		s.callersOf[e.Callee] = append(s.callersOf[e.Callee], e)
	}
	return s
}

// node keys a (context, instruction) DUG node.
type node struct {
	ctx ctxs.ID
	in  *ir.Instr
}

// BackwardSlice computes the static backward data-flow slice of the
// criterion instruction, unioned over every context in which the
// criterion's function was analyzed.
func (s *Slicer) BackwardSlice(criterion *ir.Instr) *Slice {
	out := &Slice{Instrs: &bitset.Set{}, Criterion: criterion}
	visited := map[node]bool{}
	var work []node
	push := func(n node) {
		if !visited[n] {
			visited[n] = true
			work = append(work, n)
		}
	}
	for _, c := range s.pt.Tree.CtxsOf(criterion.Block.Fn) {
		push(node{ctx: c, in: criterion})
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out.Instrs.Add(n.in.ID)
		s.deps(n, push)
	}
	out.Nodes = len(visited)
	return out
}

// deps pushes every DUG predecessor of n.
func (s *Slicer) deps(n node, push func(node)) {
	in, c := n.in, n.ctx
	fn := in.Block.Fn

	// Register operand uses.
	s.operandDeps(c, fn, in, in.A, push)
	s.operandDeps(c, fn, in, in.B, push)
	for _, a := range in.Args {
		s.operandDeps(c, fn, in, a, push)
	}

	switch in.Op {
	case ir.OpLoad:
		// Memory dependence: aliasing stores that may precede.
		lp := s.pt.AddrPts(c, in)
		for _, st := range s.stores {
			if !st.addr.Intersects(lp) {
				continue
			}
			if st.in.Block.Fn == fn && st.ctx == c && !s.reach.MayPrecede(st.in, in) {
				continue // flow-sensitive: the store cannot precede the load
			}
			push(node{ctx: st.ctx, in: st.in})
		}
	case ir.OpCall:
		// The call's result comes from the callee's returns.
		for _, ce := range s.pt.CtxCallees(c, in) {
			calleeFn := s.pt.Tree.FnOf(ce)
			for _, ret := range s.retsOf[calleeFn.ID] {
				push(node{ctx: ce, in: ret})
			}
		}
	}
}

// operandDeps pushes the defs feeding one operand use.
func (s *Slicer) operandDeps(c ctxs.ID, fn *ir.Function, use *ir.Instr, op ir.Operand, push func(node)) {
	if op.Kind != ir.OperVar {
		return
	}
	v := op.Var
	for _, def := range s.defs[fn.ID][v.ID] {
		if s.reach.MayPrecede(def, use) {
			push(node{ctx: c, in: def})
		}
	}
	// Parameters are bound by callers (call, spawn).
	if isParam(fn, v) {
		for _, e := range s.callersOf[c] {
			push(node{ctx: e.Caller, in: e.Site})
		}
	}
}

func isParam(fn *ir.Function, v *ir.Var) bool {
	for _, p := range fn.Params {
		if p == v {
			return true
		}
	}
	return false
}

// NonTrivialEndpoints returns analyzed instructions whose sound static
// slice contains at least minSize instructions — the paper's
// "non-trivial endpoints" (§6.1.2, threshold 500). Endpoints are drawn
// from print and store instructions (observable effects).
func (s *Slicer) NonTrivialEndpoints(minSize int) []*ir.Instr {
	var out []*ir.Instr
	for _, in := range s.pt.SeededInstrs() {
		if in.Op != ir.OpPrint && in.Op != ir.OpStore {
			continue
		}
		if s.BackwardSlice(in).Size() >= minSize {
			out = append(out, in)
		}
	}
	return out
}
