package dynslice

import (
	"errors"
	"testing"

	"oha/internal/ctxs"
	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/lang"
	"oha/internal/pointsto"
	"oha/internal/sched"
	"oha/internal/staticslice"
)

// trace runs the program with full tracing and returns the tracer.
func trace(t *testing.T, p *ir.Program, inputs ...int64) *Tracer {
	t.Helper()
	tr := New(p, nil)
	_, err := interp.Run(interp.Config{
		Prog:      p,
		Inputs:    inputs,
		Tracer:    tr,
		ExecAll:   true,
		Choose:    sched.NewSeeded(1),
		BlockMask: make([]bool, len(p.Blocks)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func lastPrint(t *testing.T, p *ir.Program) *ir.Instr {
	t.Helper()
	var out *ir.Instr
	for _, in := range p.Instrs {
		if in.Op == ir.OpPrint {
			out = in
		}
	}
	if out == nil {
		t.Fatal("no print instruction")
	}
	return out
}

func TestBasicDynamicSlice(t *testing.T) {
	p := lang.MustCompile(`
		func main() {
			var a = input(0);
			var b = input(1);
			var c = a + 1;
			var d = b + 2;    // not in slice of print(c)
			print(c);
			print(d);
		}
	`)
	tr := trace(t, p, 10, 20)
	var firstPrint *ir.Instr
	for _, in := range p.Instrs {
		if in.Op == ir.OpPrint {
			firstPrint = in
			break
		}
	}
	s := tr.Slice(firstPrint)
	if s == nil {
		t.Fatal("no slice")
	}
	// Count input instructions in the slice: only input(0).
	inputs := 0
	for _, in := range p.Instrs {
		if in.Op == ir.OpInput && s.Instrs.Has(in.ID) {
			inputs++
		}
	}
	if inputs != 1 {
		t.Errorf("inputs in slice = %d, want 1", inputs)
	}
}

func TestSliceThroughMemoryLastWriter(t *testing.T) {
	// Dynamic slicing is more precise than static: only the *actual*
	// last store matters.
	p := lang.MustCompile(`
		global g = 0;
		func main() {
			g = input(0);       // overwritten
			g = input(1);       // actual last writer
			print(g);
		}
	`)
	tr := trace(t, p, 1, 2)
	s := tr.Slice(lastPrint(t, p))
	inputsInSlice := 0
	for _, in := range p.Instrs {
		if in.Op == ir.OpInput && s.Instrs.Has(in.ID) {
			inputsInSlice++
		}
	}
	if inputsInSlice != 1 {
		t.Errorf("dynamic slice kept %d inputs, want 1 (last writer only)", inputsInSlice)
	}
}

func TestSliceThroughCallsAndReturns(t *testing.T) {
	p := lang.MustCompile(`
		func mix(x, y) { return x; }  // y irrelevant
		func main() {
			var a = input(0);
			var b = input(1);
			var r = mix(a, b);
			print(r);
		}
	`)
	tr := trace(t, p, 3, 4)
	s := tr.Slice(lastPrint(t, p))
	// input(0) must be in the slice. Note: call-site argument binding
	// is instruction-granular, so input(1) also enters through the
	// call node (the call uses both args) — standard for
	// instruction-level dynamic slicing without parameter splitting.
	var in0 *ir.Instr
	for _, in := range p.Instrs {
		if in.Op == ir.OpInput {
			in0 = in
			break
		}
	}
	if !s.Instrs.Has(in0.ID) {
		t.Error("argument source missing from slice")
	}
	// The callee's ret must be in the slice.
	found := false
	for _, b := range p.FuncByName["mix"].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpRet && s.Instrs.Has(in.ID) {
				found = true
			}
		}
	}
	if !found {
		t.Error("callee return missing from slice")
	}
}

func TestSliceThroughSpawnedThread(t *testing.T) {
	p := lang.MustCompile(`
		global out = 0;
		func w(v) { out = v * 2; }
		func main() {
			var secret = input(0);
			var t = spawn w(secret);
			join(t);
			print(out);
		}
	`)
	tr := trace(t, p, 21)
	s := tr.Slice(lastPrint(t, p))
	var inp *ir.Instr
	for _, in := range p.Instrs {
		if in.Op == ir.OpInput {
			inp = in
		}
	}
	if !s.Instrs.Has(inp.ID) {
		t.Error("cross-thread dataflow missing from slice")
	}
}

func TestUnexecutedCodeNotInSlice(t *testing.T) {
	p := lang.MustCompile(`
		global g = 0;
		func dead() { g = 99; }
		func main() {
			if (input(0)) { dead(); }
			g = 5;
			print(g);
		}
	`)
	tr := trace(t, p, 0)
	s := tr.Slice(lastPrint(t, p))
	for _, b := range p.FuncByName["dead"].Blocks {
		for _, in := range b.Instrs {
			if s.Instrs.Has(in.ID) {
				t.Error("never-executed instruction in dynamic slice")
			}
		}
	}
}

func TestCriterionNeverExecuted(t *testing.T) {
	p := lang.MustCompile(`
		func main() {
			if (input(0)) { print(1); }
			print(2);
		}
	`)
	tr := trace(t, p, 0)
	var firstPrint *ir.Instr
	for _, in := range p.Instrs {
		if in.Op == ir.OpPrint {
			firstPrint = in
			break
		}
	}
	if tr.Slice(firstPrint) != nil {
		t.Error("slice of unexecuted criterion should be nil")
	}
}

func TestSliceAllInstances(t *testing.T) {
	p := lang.MustCompile(`
		global g = 0;
		func main() {
			var i = 0;
			while (i < 3) {
				g = g + input(i);
				print(g);
				i = i + 1;
			}
		}
	`)
	tr := trace(t, p, 1, 2, 3)
	pr := lastPrint(t, p)
	last := tr.Slice(pr)
	all := tr.SliceAllInstances(pr)
	if last == nil || all == nil {
		t.Fatal("missing slices")
	}
	if !last.Instrs.SubsetOf(all.Instrs) {
		t.Error("last-instance slice not subset of all-instances slice")
	}
	if all.DynNodes <= last.DynNodes {
		t.Error("all-instances slice has no extra dynamic nodes")
	}
}

func TestTraceOverflowAborts(t *testing.T) {
	p := lang.MustCompile(`
		func main() {
			var i = 0;
			while (i < 100000) { i = i + 1; }
		}
	`)
	ab := &interp.Abort{}
	tr := New(p, ab)
	tr.MaxNodes = 1000
	_, err := interp.Run(interp.Config{
		Prog: p, Tracer: tr, ExecAll: true, Abort: ab,
		BlockMask: make([]bool, len(p.Blocks)),
	})
	if !errors.Is(err, interp.ErrAborted) {
		t.Fatalf("err = %v, want abort on trace overflow", err)
	}
	if !tr.Overflowed() {
		t.Error("Overflowed not set")
	}
}

// The hybrid property: tracing only the (sound) static slice yields
// the same dynamic slice as full tracing.
func TestHybridTracingEquivalence(t *testing.T) {
	src := `
		global g = 0;
		global noise = 0;
		func churn(x) { noise = noise + x; return x; }
		func step(v) { return v * 2 + 1; }
		func main() {
			var acc = input(0);
			var i = 0;
			while (i < 5) {
				churn(i);
				acc = step(acc);
				i = i + 1;
			}
			g = acc;
			print(g);
		}
	`
	p := lang.MustCompile(src)
	criterion := lastPrint(t, p)

	// Full Giri.
	full := trace(t, p, 7)
	fullSlice := full.Slice(criterion)

	// Hybrid: static slice -> ExecMask.
	pt, err := pointsto.Analyze(p, ctxs.NewCI(p), nil)
	if err != nil {
		t.Fatal(err)
	}
	static := staticslice.New(pt).BackwardSlice(criterion)
	mask := make([]bool, len(p.Instrs))
	static.Instrs.ForEach(func(id int) bool {
		mask[id] = true
		return true
	})
	hybrid := New(p, nil)
	_, err = interp.Run(interp.Config{
		Prog: p, Inputs: []int64{7}, Tracer: hybrid, ExecMask: mask,
		Choose:    sched.NewSeeded(1),
		BlockMask: make([]bool, len(p.Blocks)),
	})
	if err != nil {
		t.Fatal(err)
	}
	hybridSlice := hybrid.Slice(criterion)
	if hybridSlice == nil {
		t.Fatal("hybrid slice missing")
	}
	if !fullSlice.Equal(hybridSlice) {
		t.Fatalf("hybrid slice differs from full:\nfull   = %v\nhybrid = %v",
			fullSlice.Instrs, hybridSlice.Instrs)
	}
	// And the hybrid run must record fewer nodes.
	if hybrid.NodeCount() >= full.NodeCount() {
		t.Errorf("hybrid traced %d nodes, full traced %d", hybrid.NodeCount(), full.NodeCount())
	}
	// Dynamic slice must be a subset of the sound static slice.
	if !fullSlice.Instrs.SubsetOf(static.Instrs) {
		t.Error("dynamic slice not contained in sound static slice")
	}
}
