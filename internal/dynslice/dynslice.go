// Package dynslice implements a Giri-style trace-based dynamic
// backward slicer (Sahoo et al., the dynamic slicer OptSlice
// accelerates) as an interpreter Tracer.
//
// During execution it records one trace node per traced instruction
// instance, with edges to the dynamic definitions the instance used:
// register dataflow within each activation, call/return/spawn binding
// across activations, and memory dataflow through last-writer
// tracking per address. A backward slice is then the transitive
// closure of a criterion instance over those edges, reported as the
// set of static instructions involved (data-flow slices only — no
// control dependencies, matching OptSlice §5).
//
// Hybrid slicing traces only the instructions in a static slice (the
// interpreter's ExecMask); every dynamic dependence chain that reaches
// the criterion is contained in a sound static slice, so the computed
// dynamic slice is unchanged — that is the hybrid-Giri optimization.
// Full tracing of non-trivial executions exhausts memory quickly
// (MaxNodes models the paper's observation that pure Giri "exhausts
// system resources even on modest executions").
package dynslice

import (
	"errors"

	"oha/internal/bitset"
	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/vc"
)

// ErrTraceExhausted is reported (via the interpreter's Abort flag)
// when the trace exceeds MaxNodes.
var ErrTraceExhausted = errors.New("dynslice: trace node limit exceeded")

// node is one dynamic instruction instance.
type node struct {
	instr int32
	deps  []int32
}

// Tracer records the dynamic dependence trace. Install as the
// interpreter's Tracer with ExecMask covering the instructions to
// trace (or ExecAll for full Giri).
type Tracer struct {
	interp.NopTracer
	prog *ir.Program

	nodes []node
	// lastReg maps (frame, var) to the defining node.
	lastReg map[regKey]int32
	// lastMem tracks each address's last traced store node, laid out as
	// per-object slices mirroring the interpreter's heap
	// (lastMem[obj][off] = node id + 1, 0 meaning "no traced store").
	// Addresses reaching Exec passed the interpreter's bounds checks,
	// so indexing is dense — no map work on the per-access hot path.
	lastMem [][]int32
	// lastInstance records each static instr ID's latest node, as a
	// dense slice indexed by instr ID (node id + 1, 0 meaning "never
	// executed") — the criterion lookup and the per-node update are
	// both O(1) with no map work.
	lastInstance []int32

	// pendingCall/pendingSpawn/pendingRet stash cross-activation
	// binding info delivered by the Call/Spawn/Ret events until the
	// matching Exec event arrives.
	pendingCall  *callBinding
	pendingRet   *retBinding
	pendingSpawn *callBinding

	// MaxNodes bounds the trace (0: 4M nodes). On overflow the tracer
	// raises Abort (if set) and stops recording.
	MaxNodes int
	Abort    *interp.Abort
	full     bool
}

type regKey struct {
	frame interp.FrameID
	v     int32
}

type callBinding struct {
	site        *ir.Instr
	callee      *ir.Function
	caller      interp.FrameID
	calleeFrame interp.FrameID
}

type retBinding struct {
	callee interp.FrameID
	caller interp.FrameID
	dst    *ir.Var
}

// New returns a tracer for prog. abort, when non-nil, lets the tracer
// stop the execution if the trace overflows MaxNodes.
func New(prog *ir.Program, abort *interp.Abort) *Tracer {
	return &Tracer{
		prog:         prog,
		lastReg:      map[regKey]int32{},
		lastInstance: make([]int32, len(prog.Instrs)),
		Abort:        abort,
		MaxNodes:     4 << 20,
	}
}

// FastState implements interp.FastTracer: Exec events for opcodes the
// slicer unconditionally ignores (its first check, before any state)
// are skipped inside the engine's dispatch loop.
func (tr *Tracer) FastState() *interp.FastState {
	return &interp.FastState{Kind: interp.FastSlice}
}

// FlushMem implements interp.FastTracer. The slicer never requests
// memory-event batching (it consumes Exec, not Load/Store), so there
// is never anything to flush.
func (tr *Tracer) FlushMem([]interp.MemEvent) {}

// NodeCount returns the number of trace nodes recorded.
func (tr *Tracer) NodeCount() int { return len(tr.nodes) }

// Overflowed reports whether the trace hit MaxNodes.
func (tr *Tracer) Overflowed() bool { return tr.full }

// Call stashes the frame binding for the imminent Exec of the call.
func (tr *Tracer) Call(_ vc.TID, in *ir.Instr, callee *ir.Function, caller, calleeFrame interp.FrameID) {
	tr.pendingCall = &callBinding{site: in, callee: callee, caller: caller, calleeFrame: calleeFrame}
}

// Spawn stashes the frame binding for the imminent Exec of the spawn.
func (tr *Tracer) Spawn(_ vc.TID, in *ir.Instr, _ vc.TID, childFrame interp.FrameID, callee *ir.Function) {
	tr.pendingSpawn = &callBinding{site: in, callee: callee, calleeFrame: childFrame}
}

// Ret stashes the return binding for the imminent Exec of the ret.
func (tr *Tracer) Ret(_ vc.TID, _ *ir.Instr, callee, caller interp.FrameID, dst *ir.Var) {
	tr.pendingRet = &retBinding{callee: callee, caller: caller, dst: dst}
}

// memLast returns the last traced store node for addr, if any.
func (tr *Tracer) memLast(a interp.Addr) (int32, bool) {
	obj, off := interp.DecodeAddr(a)
	if obj < len(tr.lastMem) {
		if cells := tr.lastMem[obj]; int(off) < len(cells) {
			if n := cells[off]; n != 0 {
				return n - 1, true
			}
		}
	}
	return 0, false
}

// memDefine records node id as addr's last traced store.
func (tr *Tracer) memDefine(a interp.Addr, id int32) {
	obj, off := interp.DecodeAddr(a)
	for obj >= len(tr.lastMem) {
		tr.lastMem = append(tr.lastMem, nil)
	}
	cells := tr.lastMem[obj]
	if int(off) >= len(cells) {
		n := int(off) + 1
		if n < 2*len(cells) {
			n = 2 * len(cells)
		}
		grown := make([]int32, n)
		copy(grown, cells)
		tr.lastMem[obj] = grown
		cells = grown
	}
	cells[off] = id + 1
}

// operandDep appends the defining node of a register operand, if
// traced.
func (tr *Tracer) operandDep(frame interp.FrameID, op ir.Operand, deps []int32) []int32 {
	if op.Kind != ir.OperVar {
		return deps
	}
	if n, ok := tr.lastReg[regKey{frame: frame, v: int32(op.Var.ID)}]; ok {
		deps = append(deps, n)
	}
	return deps
}

// Exec records one dynamic instance.
func (tr *Tracer) Exec(_ vc.TID, in *ir.Instr, frame interp.FrameID, addr interp.Addr) {
	switch in.Op {
	case ir.OpJmp, ir.OpBr, ir.OpLock, ir.OpUnlock, ir.OpJoin:
		// Control flow and synchronization define no data, and
		// data-flow slices ignore control dependences: no node.
		return
	}
	if tr.full {
		return
	}
	if len(tr.nodes) >= tr.MaxNodes {
		tr.full = true
		if tr.Abort != nil {
			tr.Abort.Set(ErrTraceExhausted.Error())
		}
		return
	}

	var deps []int32
	deps = tr.operandDep(frame, in.A, deps)
	deps = tr.operandDep(frame, in.B, deps)
	for _, a := range in.Args {
		deps = tr.operandDep(frame, a, deps)
	}
	switch in.Op {
	case ir.OpLoad:
		if n, ok := tr.memLast(addr); ok {
			deps = append(deps, n)
		}
	case ir.OpRet:
		// Operand dep already added; binding handled below.
	}

	id := int32(len(tr.nodes))
	tr.nodes = append(tr.nodes, node{instr: int32(in.ID), deps: deps})
	tr.lastInstance[in.ID] = id + 1

	// Effects: define registers/memory and cross-activation bindings.
	switch in.Op {
	case ir.OpStore:
		tr.memDefine(addr, id)
	case ir.OpCall:
		if pc := tr.pendingCall; pc != nil && pc.site == in {
			for _, p := range pc.callee.Params {
				tr.lastReg[regKey{frame: pc.calleeFrame, v: int32(p.ID)}] = id
			}
			tr.pendingCall = nil
		}
		if in.Dst != nil {
			// The call's result is defined by the ret node later; the
			// call node itself stands in until the ret arrives (calls
			// into untraced code keep this binding).
			tr.lastReg[regKey{frame: frame, v: int32(in.Dst.ID)}] = id
		}
	case ir.OpSpawn:
		if ps := tr.pendingSpawn; ps != nil && ps.site == in {
			for _, p := range ps.callee.Params {
				tr.lastReg[regKey{frame: ps.calleeFrame, v: int32(p.ID)}] = id
			}
			tr.pendingSpawn = nil
		}
		if in.Dst != nil {
			tr.lastReg[regKey{frame: frame, v: int32(in.Dst.ID)}] = id
		}
	case ir.OpRet:
		if pr := tr.pendingRet; pr != nil && pr.callee == frame {
			if pr.dst != nil {
				tr.lastReg[regKey{frame: pr.caller, v: int32(pr.dst.ID)}] = id
			}
			tr.pendingRet = nil
		}
	default:
		if in.Dst != nil {
			tr.lastReg[regKey{frame: frame, v: int32(in.Dst.ID)}] = id
		}
	}
}

// Slice computes the dynamic backward slice from the latest instance
// of the criterion instruction. It returns nil if the criterion never
// executed (or was not traced).
func (tr *Tracer) Slice(criterion *ir.Instr) *Slice {
	if criterion.ID >= len(tr.lastInstance) || tr.lastInstance[criterion.ID] == 0 {
		return nil
	}
	return tr.sliceFrom([]int32{tr.lastInstance[criterion.ID] - 1}, criterion)
}

// SliceAllInstances slices from every dynamic instance of the
// criterion (useful when the "failure" could be any instance).
func (tr *Tracer) SliceAllInstances(criterion *ir.Instr) *Slice {
	var starts []int32
	for i, n := range tr.nodes {
		if n.instr == int32(criterion.ID) {
			starts = append(starts, int32(i))
		}
	}
	if len(starts) == 0 {
		return nil
	}
	return tr.sliceFrom(starts, criterion)
}

func (tr *Tracer) sliceFrom(starts []int32, criterion *ir.Instr) *Slice {
	s := &Slice{Instrs: &bitset.Set{}, Criterion: criterion}
	seen := bitset.New(len(tr.nodes))
	work := append([]int32(nil), starts...)
	for _, w := range work {
		seen.Add(int(w))
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		s.DynNodes++
		nd := &tr.nodes[n]
		s.Instrs.Add(int(nd.instr))
		for _, d := range nd.deps {
			if seen.Add(int(d)) {
				work = append(work, d)
			}
		}
	}
	return s
}

// Slice is a dynamic backward slice.
type Slice struct {
	// Instrs is the set of static instruction IDs whose instances
	// affected the criterion.
	Instrs *bitset.Set
	// DynNodes is the number of dynamic instances in the slice.
	DynNodes  int
	Criterion *ir.Instr
}

// Size returns the number of static instructions in the slice.
func (s *Slice) Size() int { return s.Instrs.Len() }

// Equal reports whether two slices cover the same static instructions.
func (s *Slice) Equal(o *Slice) bool {
	if s == nil || o == nil {
		return s == o
	}
	return s.Instrs.Equal(o.Instrs)
}
