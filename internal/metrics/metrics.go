// Package metrics is a tiny, dependency-free instrumentation layer for
// the long-running analysis service: atomic counters and gauges,
// fixed-bucket latency histograms, and an ordered registry that renders
// the Prometheus text exposition format. It exists so the daemon's hot
// paths (worker pool, artifact cache, HTTP handlers) can record
// observations with a single atomic op and no allocation.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets (seconds), spanning the
// sub-millisecond invariant-store hits through multi-second static
// solves.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram of float64 observations
// (conventionally seconds). Observations are lock-free; rendering
// produces cumulative Prometheus-style buckets.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given bucket upper bounds
// (nil: DefBuckets). Bounds are sorted and deduplicated.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts (one per bound, then +Inf).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// labeled pairs a label set rendered as `{k="v",...}` with a metric.
type labeled[T any] struct {
	labels string
	m      T
}

// labelSet renders `{k1="v1",k2="v2"}` for one child of a vec; a
// value-count mismatch is a programming error and panics.
func labelSet(labels, values []string) string {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("metrics: %d label values for labels %v", len(values), labels))
	}
	var b []byte
	b = append(b, '{')
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, fmt.Sprintf("%s=%q", l, values[i])...)
	}
	return string(append(b, '}'))
}

// childKey is the map key of one label-value tuple.
func childKey(values []string) string {
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	return key
}

// CounterVec is a counter family keyed by one or more labels. Children
// are created on first use and rendered in creation order.
type CounterVec struct {
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
	order    []labeled[*Counter]
}

// NewCounterVec returns a counter family with the given label names.
func NewCounterVec(labels ...string) *CounterVec {
	return &CounterVec{labels: labels, children: map[string]*Counter{}}
}

// With returns the child counter for a label-value tuple (one value
// per label, in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	key := childKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
		v.order = append(v.order, labeled[*Counter]{labels: labelSet(v.labels, values), m: c})
	}
	return c
}

// HistogramVec is a histogram family keyed by one or more labels.
// Children are created on first use and rendered in creation order.
type HistogramVec struct {
	labels []string
	bounds []float64

	mu       sync.Mutex
	children map[string]*Histogram
	order    []labeled[*Histogram]
}

// NewHistogramVec returns a histogram family with the given label
// names over DefBuckets.
func NewHistogramVec(labels ...string) *HistogramVec {
	return &HistogramVec{labels: labels, children: map[string]*Histogram{}}
}

// With returns the child histogram for a label-value tuple (one value
// per label, in declaration order), creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := childKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = NewHistogram(v.bounds...)
		v.children[key] = h
		v.order = append(v.order, labeled[*Histogram]{labels: labelSet(v.labels, values), m: h})
	}
	return h
}

// FloatGauge is a gauge holding a float64 (atomically, via its bits).
// The zero value is ready to use.
type FloatGauge struct {
	v atomic.Uint64
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Registry is an ordered collection of named metrics with a text
// exposition. A nil *Registry is valid: every New* helper returns a
// working (unregistered) metric, so instrumented code never
// nil-checks.
type Registry struct {
	mu   sync.Mutex
	rows []row
}

type row struct {
	name, help, typ string
	render          func(w io.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(name, help, typ string, render func(w io.Writer, name string)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rows = append(r.rows, row{name: name, help: help, typ: typ, render: render})
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	})
	return c
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := NewCounterVec(labels...)
	r.add(name, help, "counter", func(w io.Writer, n string) {
		v.mu.Lock()
		order := append([]labeled[*Counter](nil), v.order...)
		v.mu.Unlock()
		for _, ch := range order {
			fmt.Fprintf(w, "%s%s %d\n", n, ch.labels, ch.m.Value())
		}
	})
	return v
}

// NewCounterFunc registers a counter whose value is polled at render
// time — the bridge for externally-maintained monotonic counts such as
// the artifact cache's eviction total.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.add(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	})
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	})
	return g
}

// NewGaugeFunc registers a gauge whose value is polled at render time —
// the bridge for externally-maintained statistics such as the artifact
// cache's hit counters or a queue's depth.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.add(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(fn()))
	})
}

// NewHistogram registers and returns a histogram (nil bounds:
// DefBuckets).
func (r *Registry) NewHistogram(name, help string, bounds ...float64) *Histogram {
	h := NewHistogram(bounds...)
	r.add(name, help, "histogram", func(w io.Writer, n string) {
		cum := h.snapshot()
		for i, b := range h.bounds {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count())
	})
	return h
}

// NewHistogramVec registers and returns a labeled histogram family
// over DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, labels ...string) *HistogramVec {
	v := NewHistogramVec(labels...)
	r.add(name, help, "histogram", func(w io.Writer, n string) {
		v.mu.Lock()
		order := append([]labeled[*Histogram](nil), v.order...)
		v.mu.Unlock()
		for _, ch := range order {
			// {label="value"} -> label="value" for composing with le.
			inner := ch.labels[1 : len(ch.labels)-1]
			cum := ch.m.snapshot()
			for i, b := range ch.m.bounds {
				fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", n, inner, formatFloat(b), cum[i])
			}
			fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", n, inner, cum[len(cum)-1])
			fmt.Fprintf(w, "%s_sum%s %s\n", n, ch.labels, formatFloat(ch.m.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", n, ch.labels, ch.m.Count())
		}
	})
	return v
}

// NewFloatGauge registers and returns a float-valued gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{}
	r.add(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %s\n", n, formatFloat(g.Value()))
	})
	return g
}

// WriteTo renders every registered metric in registration order using
// the Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	rows := append([]row(nil), r.rows...)
	r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, m := range rows {
		if m.help != "" {
			fmt.Fprintf(cw, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(cw, "# TYPE %s %s\n", m.name, m.typ)
		m.render(cw, m.name)
	}
	return cw.n, cw.err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
