package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	cum := h.snapshot()
	// le=0.1: {0.05, 0.1}; le=1: +{0.5}; le=10: +{2}; +Inf: +{100}
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := NewHistogram(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got != 4000 {
		t.Fatalf("sum = %v, want 4000", got)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "total jobs")
	c.Add(3)
	v := r.NewCounterVec("jobs_by_kind_total", "jobs by kind", "kind")
	v.With("race").Add(2)
	v.With("slice").Inc()
	g := r.NewGauge("queue_depth", "queued jobs")
	g.Set(4)
	r.NewGaugeFunc("cache_hits", "cache hits", func() float64 { return 9 })
	h := r.NewHistogram("latency_seconds", "job latency", 0.5, 1)
	h.Observe(0.25)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`jobs_by_kind_total{kind="race"} 2`,
		`jobs_by_kind_total{kind="slice"} 1`,
		"queue_depth 4",
		"cache_hits 9",
		`latency_seconds_bucket{le="0.5"} 1`,
		`latency_seconds_bucket{le="+Inf"} 1`,
		"latency_seconds_sum 0.25",
		"latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x", "")
	c.Inc() // must not panic
	r.NewGaugeFunc("y", "", func() float64 { return 0 })
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatalf("nil registry WriteTo = (%d, %v)", n, err)
	}
}
