package adapt

import (
	"fmt"
	"strings"
	"testing"

	"oha/internal/artifacts"
	"oha/internal/core"
	"oha/internal/interp"
	"oha/internal/lang"
)

// calleeProg dispatches through a function table with the slot index
// masked by input(0). Profiling with input 0 pins every dispatch to
// f0 (a monomorphic likely callee set) while still visiting every
// function body through the direct warm-up calls — so analyzing with
// input 3 escapes the callee set without touching an unvisited block,
// isolating the callee-set violation and the inline-cache deopt path.
const calleeProg = `
	global a = 0;
	global ftab[4];
	func f0(x) { return x + 1; }
	func f1(x) { return x + 2; }
	func f2(x) { return x + 3; }
	func main() {
		ftab[0] = f0;
		ftab[1] = f1;
		ftab[2] = f2;
		ftab[3] = f0;
		a = f0(1) + f1(2) + f2(3);
		var k = input(0);
		var i = 0;
		while (i < 30) {
			var h = ftab[(i & k) & 3];
			a = a + h(i);
			i = i + 1;
		}
		print(a);
	}
`

// fpRaceProg pairs the canonical likely-unreachable-code refinement
// trigger (the k>100 branch, unvisited when profiled with small
// inputs) with an unsynchronized counting loop: each worker hammers h
// in one epoch, so the race detector's same-epoch fast path gets dense
// hits both in the speculative generation-1 run and in the post-refine
// generation-2 image — proving the fast path survives recompiles and
// generation hot-swaps.
const fpRaceProg = `
	global g = 0;
	global h = 0;
	func w(k) {
		var i = 0;
		while (i < 40) {
			h = h + 1;
			i = i + 1;
		}
		if (k > 100) {
			g = g + 1;
		}
	}
	func main() {
		var t1 = spawn w(input(0));
		var t2 = spawn w(input(0));
		join(t1);
		join(t2);
		print(g + h);
	}
`

// TestFastPathParityAcrossRefinement drives the refine-and-retry loop
// with the engine's inline analysis fast paths on and off, for both
// the race client (epoch fast path + memory-event batching) and the
// slice client (Exec skip classes): attempt sequences, refinement
// histories, and final verdicts must be identical — the fast paths may
// only change tracing speed, never results — across every recompile
// and generation hot-swap the loop performs.
func TestFastPathParityAcrossRefinement(t *testing.T) {
	type outcome struct {
		attempts  []string
		dbDigests []string
		final     string
	}

	t.Run("race", func(t *testing.T) {
		prog := lang.MustCompile(fpRaceProg)
		pr := profileDB(t, prog, []int64{5}, 20)
		e := core.Execution{Inputs: []int64{500}, Seed: 3}
		run := func(noFast bool) (outcome, interp.ICStats) {
			t.Helper()
			m := New(prog, pr.DB, Options{
				Cache:  artifacts.New(""),
				Static: core.StaticConfig{Workers: 1, NoFastPath: noFast},
			})
			tries, err := m.RunRace(e, core.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var o outcome
			var ic interp.ICStats
			for _, a := range tries {
				rep := a.Report
				o.attempts = append(o.attempts, fmt.Sprintf("gen%d rolled=%v kind=%s site=%d",
					a.Generation, rep.RolledBack, rep.Violation.Kind, rep.Violation.Site))
				ic.Add(rep.IC)
			}
			last := tries[len(tries)-1].Report
			o.final = fmt.Sprint(last.Details, last.Stats, last.FTChecks, last.Output)
			for _, g := range m.Status().History {
				o.dbDigests = append(o.dbDigests, g.DBDigest)
			}
			return o, ic
		}
		on, onIC := run(false)
		off, offIC := run(true)
		if len(on.attempts) < 2 {
			t.Fatalf("expected a rollback and retry, got attempts %v", on.attempts)
		}
		if fmt.Sprint(on.attempts) != fmt.Sprint(off.attempts) {
			t.Errorf("attempts diverged:\n on:  %v\n off: %v", on.attempts, off.attempts)
		}
		if fmt.Sprint(on.dbDigests) != fmt.Sprint(off.dbDigests) {
			t.Errorf("refinement history diverged:\n on:  %v\n off: %v", on.dbDigests, off.dbDigests)
		}
		if on.final != off.final {
			t.Errorf("final report diverged:\n on:  %s\n off: %s", on.final, off.final)
		}
		if onIC.FastPath.Hits == 0 {
			t.Errorf("fast-path-on adaptive race run recorded no hits: %+v", onIC.FastPath)
		}
		if offIC.FastPath != (interp.FastPathStats{}) {
			t.Errorf("NoFastPath adaptive race run recorded fast-path traffic %+v", offIC.FastPath)
		}
	})

	t.Run("slice", func(t *testing.T) {
		prog := lang.MustCompile(calleeProg)
		pr := profileDB(t, prog, []int64{0}, 20)
		criterion := lastPrint(prog)
		e := core.Execution{Inputs: []int64{3}, Seed: 2}
		run := func(noFast bool) (outcome, interp.ICStats) {
			t.Helper()
			m := New(prog, pr.DB, Options{
				Cache:  artifacts.New(""),
				Static: core.StaticConfig{Workers: 1, NoFastPath: noFast},
			})
			tries, err := m.RunSlice(criterion, 4096, e, core.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var o outcome
			var ic interp.ICStats
			for _, a := range tries {
				rep := a.Report
				o.attempts = append(o.attempts, fmt.Sprintf("gen%d rolled=%v kind=%s site=%d",
					a.Generation, rep.RolledBack, rep.Violation.Kind, rep.Violation.Site))
				ic.Add(rep.IC)
			}
			last := tries[len(tries)-1].Report
			o.final = fmt.Sprint(last.Slice.Instrs, last.Stats, last.TraceNodes, last.Output)
			for _, g := range m.Status().History {
				o.dbDigests = append(o.dbDigests, g.DBDigest)
			}
			return o, ic
		}
		on, _ := run(false)
		off, offIC := run(true)
		if fmt.Sprint(on.attempts) != fmt.Sprint(off.attempts) {
			t.Errorf("attempts diverged:\n on:  %v\n off: %v", on.attempts, off.attempts)
		}
		if fmt.Sprint(on.dbDigests) != fmt.Sprint(off.dbDigests) {
			t.Errorf("refinement history diverged:\n on:  %v\n off: %v", on.dbDigests, off.dbDigests)
		}
		if on.final != off.final {
			t.Errorf("final slice diverged:\n on:  %s\n off: %s", on.final, off.final)
		}
		if offIC.FastPath != (interp.FastPathStats{}) {
			t.Errorf("NoFastPath adaptive slice run recorded fast-path traffic %+v", offIC.FastPath)
		}
	})
}

// TestCalleeEscapeParityAcrossConfigs drives the refine-and-retry loop
// on an execution whose indirect calls escape the speculated callee
// set, across the full configuration matrix {tree, compiled} ×
// {IC on, IC off} × {1, 8 static workers}: every configuration must
// produce the identical attempt sequence (violation kinds, sites, and
// escaping callees), identical refinement histories (generation count
// and DB digests), and the identical post-refine slice — inline caches
// and solver parallelism may only change speed, never results.
func TestCalleeEscapeParityAcrossConfigs(t *testing.T) {
	prog := lang.MustCompile(calleeProg)
	pr := profileDB(t, prog, []int64{0}, 20)
	criterion := lastPrint(prog)
	e := core.Execution{Inputs: []int64{3}, Seed: 2}

	type outcome struct {
		attempts  []string
		dbDigests []string
		slice     string
	}
	run := func(engine interp.EngineKind, noIC bool, workers int) (outcome, interp.ICStats) {
		t.Helper()
		m := New(prog, pr.DB, Options{
			Cache:  artifacts.New(""),
			Static: core.StaticConfig{Workers: workers, NoIC: noIC},
		})
		attempts, err := m.RunSlice(criterion, 4096, e, core.RunOptions{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		var o outcome
		var ic interp.ICStats
		for _, a := range attempts {
			rep := a.Report
			o.attempts = append(o.attempts, fmt.Sprintf("gen%d rolled=%v kind=%s site=%d callee=%d",
				a.Generation, rep.RolledBack, rep.Violation.Kind, rep.Violation.Site, rep.Violation.Callee))
			ic.Add(rep.IC)
		}
		last := attempts[len(attempts)-1].Report
		if last.RolledBack || last.Slice == nil {
			t.Fatalf("loop did not converge: %+v", last.Violation)
		}
		o.slice = fmt.Sprint(last.Slice.Instrs)
		for _, g := range m.Status().History {
			o.dbDigests = append(o.dbDigests, g.DBDigest)
		}
		return o, ic
	}

	ref, refIC := run(interp.EngineCompiled, false, 1)
	if len(ref.attempts) < 2 {
		t.Fatalf("expected at least one refinement, got attempts %v", ref.attempts)
	}
	first := ref.attempts[0]
	if want := "kind=" + string(core.ViolationCalleeSet); !strings.Contains(first, want) {
		t.Fatalf("first attempt = %q, want a callee-set violation", first)
	}
	// The speculated image is monomorphic on f0: the first dispatches
	// hit, the first escaping callee deoptimizes its site.
	if refIC.Hits == 0 || refIC.Deopts == 0 {
		t.Fatalf("compiled+IC run recorded no speculation traffic: %+v", refIC)
	}

	for _, engine := range []interp.EngineKind{interp.EngineTree, interp.EngineCompiled} {
		for _, noIC := range []bool{false, true} {
			for _, workers := range []int{1, 8} {
				got, ic := run(engine, noIC, workers)
				name := fmt.Sprintf("engine=%v noIC=%v workers=%d", engine, noIC, workers)
				if fmt.Sprint(got.attempts) != fmt.Sprint(ref.attempts) {
					t.Errorf("%s: attempts diverged:\n got: %v\n ref: %v", name, got.attempts, ref.attempts)
				}
				if fmt.Sprint(got.dbDigests) != fmt.Sprint(ref.dbDigests) {
					t.Errorf("%s: refinement history diverged:\n got: %v\n ref: %v", name, got.dbDigests, ref.dbDigests)
				}
				if got.slice != ref.slice {
					t.Errorf("%s: post-refine slice diverged:\n got: %v\n ref: %v", name, got.slice, ref.slice)
				}
				// ICs exist only in the compiled engine with IC on; the
				// tree engine and IC-off images must report zero traffic.
				// (Fusion and the analysis fast paths are independent
				// optimizations with their own counters.)
				if (engine == interp.EngineTree || noIC) && ic != (interp.ICStats{Fused: ic.Fused, FastPath: ic.FastPath}) {
					t.Errorf("%s: unexpected IC traffic %+v", name, ic)
				}
			}
		}
	}
}
