package adapt

import (
	"fmt"
	"strings"
	"testing"

	"oha/internal/artifacts"
	"oha/internal/core"
	"oha/internal/interp"
	"oha/internal/lang"
)

// calleeProg dispatches through a function table with the slot index
// masked by input(0). Profiling with input 0 pins every dispatch to
// f0 (a monomorphic likely callee set) while still visiting every
// function body through the direct warm-up calls — so analyzing with
// input 3 escapes the callee set without touching an unvisited block,
// isolating the callee-set violation and the inline-cache deopt path.
const calleeProg = `
	global a = 0;
	global ftab[4];
	func f0(x) { return x + 1; }
	func f1(x) { return x + 2; }
	func f2(x) { return x + 3; }
	func main() {
		ftab[0] = f0;
		ftab[1] = f1;
		ftab[2] = f2;
		ftab[3] = f0;
		a = f0(1) + f1(2) + f2(3);
		var k = input(0);
		var i = 0;
		while (i < 30) {
			var h = ftab[(i & k) & 3];
			a = a + h(i);
			i = i + 1;
		}
		print(a);
	}
`

// TestCalleeEscapeParityAcrossConfigs drives the refine-and-retry loop
// on an execution whose indirect calls escape the speculated callee
// set, across the full configuration matrix {tree, compiled} ×
// {IC on, IC off} × {1, 8 static workers}: every configuration must
// produce the identical attempt sequence (violation kinds, sites, and
// escaping callees), identical refinement histories (generation count
// and DB digests), and the identical post-refine slice — inline caches
// and solver parallelism may only change speed, never results.
func TestCalleeEscapeParityAcrossConfigs(t *testing.T) {
	prog := lang.MustCompile(calleeProg)
	pr := profileDB(t, prog, []int64{0}, 20)
	criterion := lastPrint(prog)
	e := core.Execution{Inputs: []int64{3}, Seed: 2}

	type outcome struct {
		attempts  []string
		dbDigests []string
		slice     string
	}
	run := func(engine interp.EngineKind, noIC bool, workers int) (outcome, interp.ICStats) {
		t.Helper()
		m := New(prog, pr.DB, Options{
			Cache:  artifacts.New(""),
			Static: core.StaticConfig{Workers: workers, NoIC: noIC},
		})
		attempts, err := m.RunSlice(criterion, 4096, e, core.RunOptions{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		var o outcome
		var ic interp.ICStats
		for _, a := range attempts {
			rep := a.Report
			o.attempts = append(o.attempts, fmt.Sprintf("gen%d rolled=%v kind=%s site=%d callee=%d",
				a.Generation, rep.RolledBack, rep.Violation.Kind, rep.Violation.Site, rep.Violation.Callee))
			ic.Add(rep.IC)
		}
		last := attempts[len(attempts)-1].Report
		if last.RolledBack || last.Slice == nil {
			t.Fatalf("loop did not converge: %+v", last.Violation)
		}
		o.slice = fmt.Sprint(last.Slice.Instrs)
		for _, g := range m.Status().History {
			o.dbDigests = append(o.dbDigests, g.DBDigest)
		}
		return o, ic
	}

	ref, refIC := run(interp.EngineCompiled, false, 1)
	if len(ref.attempts) < 2 {
		t.Fatalf("expected at least one refinement, got attempts %v", ref.attempts)
	}
	first := ref.attempts[0]
	if want := "kind=" + string(core.ViolationCalleeSet); !strings.Contains(first, want) {
		t.Fatalf("first attempt = %q, want a callee-set violation", first)
	}
	// The speculated image is monomorphic on f0: the first dispatches
	// hit, the first escaping callee deoptimizes its site.
	if refIC.Hits == 0 || refIC.Deopts == 0 {
		t.Fatalf("compiled+IC run recorded no speculation traffic: %+v", refIC)
	}

	for _, engine := range []interp.EngineKind{interp.EngineTree, interp.EngineCompiled} {
		for _, noIC := range []bool{false, true} {
			for _, workers := range []int{1, 8} {
				got, ic := run(engine, noIC, workers)
				name := fmt.Sprintf("engine=%v noIC=%v workers=%d", engine, noIC, workers)
				if fmt.Sprint(got.attempts) != fmt.Sprint(ref.attempts) {
					t.Errorf("%s: attempts diverged:\n got: %v\n ref: %v", name, got.attempts, ref.attempts)
				}
				if fmt.Sprint(got.dbDigests) != fmt.Sprint(ref.dbDigests) {
					t.Errorf("%s: refinement history diverged:\n got: %v\n ref: %v", name, got.dbDigests, ref.dbDigests)
				}
				if got.slice != ref.slice {
					t.Errorf("%s: post-refine slice diverged:\n got: %v\n ref: %v", name, got.slice, ref.slice)
				}
				// ICs exist only in the compiled engine with IC on; the
				// tree engine and IC-off images must report zero traffic.
				if (engine == interp.EngineTree || noIC) && ic != (interp.ICStats{Fused: ic.Fused}) {
					t.Errorf("%s: unexpected IC traffic %+v", name, ic)
				}
			}
		}
	}
}
