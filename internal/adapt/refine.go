package adapt

import (
	"strconv"

	"oha/internal/core"
	"oha/internal/invariants"
)

// Refinable reports whether a violation kind identifies an invariant
// fact the refinement policy can remove, per the owning client's
// core.Client contract. Trace-limit rollbacks (and the zero kind)
// carry no refutable fact: re-running changes nothing, so the manager
// never spends a generation on them.
func Refinable(k core.ViolationKind) bool {
	c, ok := core.ClientForViolation(k)
	return ok && c.Refinable(k)
}

// Refine weakens db by the fact the violation refutes, delegating to
// the owning client's refinement rule (built on the invariant
// package's merge-respecting weaken helpers): the refined database is
// exactly what profiling would have produced had it also observed the
// violating execution. Reports whether db changed — false means the
// fact was already absent (a stale violation raised by a run that
// started under an older generation) and no generation is owed.
func Refine(db *invariants.DB, v core.Violation) bool {
	c, ok := core.ClientForViolation(v.Kind)
	return ok && c.Refine(db, v)
}

// factKey fingerprints the invariant fact a violation refutes — the
// unit the ledger counts toward Policy.Threshold and the refined-DB
// cache discriminates on. Distinct dynamic observations of one fact
// (e.g. the same unprofiled context entered from different runs)
// collapse to one key.
func factKey(v core.Violation) string {
	if c, ok := core.ClientForViolation(v.Kind); ok {
		return c.FactKey(v)
	}
	return string(v.Kind) + "@" + strconv.Itoa(v.Site)
}
