package adapt

import (
	"strconv"
	"strings"

	"oha/internal/core"
	"oha/internal/invariants"
)

// Refinable reports whether a violation kind identifies an invariant
// fact the refinement policy can remove. Trace-limit rollbacks (and
// the zero kind) carry no refutable fact: re-running changes nothing,
// so the manager never spends a generation on them.
func Refinable(k core.ViolationKind) bool {
	switch k {
	case core.ViolationUnreachableBlock,
		core.ViolationSingletonSpawn,
		core.ViolationGuardingLock,
		core.ViolationCalleeSet,
		core.ViolationCallContext,
		core.ViolationElidedLockRace:
		return true
	}
	return false
}

// Refine weakens db by the fact the violation refutes, using the
// invariant package's merge-respecting weaken helpers: the refined
// database is exactly what profiling would have produced had it also
// observed the violating execution. Reports whether db changed — false
// means the fact was already absent (a stale violation raised by a run
// that started under an older generation) and no generation is owed.
func Refine(db *invariants.DB, v core.Violation) bool {
	switch v.Kind {
	case core.ViolationUnreachableBlock:
		return db.MarkVisited(v.Site)
	case core.ViolationSingletonSpawn:
		return db.RetractSingletonSpawn(v.Site)
	case core.ViolationGuardingLock:
		return db.DropMustAliasGroup(v.Site) > 0
	case core.ViolationCalleeSet:
		return db.WidenCallees(v.Site, v.Callee)
	case core.ViolationCallContext:
		return db.AddContext(v.Path)
	case core.ViolationElidedLockRace:
		return db.ClearElidableLocks()
	}
	return false
}

// factKey fingerprints the invariant fact a violation refutes — the
// unit the ledger counts toward Policy.Threshold and the refined-DB
// cache discriminates on. Distinct dynamic observations of one fact
// (e.g. the same unprofiled context entered from different runs)
// collapse to one key.
func factKey(v core.Violation) string {
	var b strings.Builder
	b.WriteString(string(v.Kind))
	b.WriteByte('@')
	b.WriteString(strconv.Itoa(v.Site))
	if v.Kind == core.ViolationCalleeSet {
		b.WriteByte('>')
		b.WriteString(strconv.Itoa(v.Callee))
	}
	if v.Kind == core.ViolationCallContext {
		for _, s := range v.Path {
			b.WriteByte('/')
			b.WriteString(strconv.Itoa(s))
		}
	}
	return b.String()
}
