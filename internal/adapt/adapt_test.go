package adapt

import (
	"errors"
	"reflect"
	"testing"

	"oha/internal/artifacts"
	"oha/internal/core"
	"oha/internal/ir"
	"oha/internal/lang"
	"oha/internal/metrics"
	"oha/internal/progen"
)

// pathProg has an input-guarded racy path: profiling with small inputs
// marks the k>100 branch likely-unreachable, so analyzing a large
// input mis-speculates — the canonical refinement trigger.
const pathProg = `
	global g = 0;
	global h = 0;
	func w(k) {
		if (k > 100) {
			g = g + 1;
		}
		h = 7;
	}
	func main() {
		var t1 = spawn w(input(0));
		var t2 = spawn w(input(0));
		join(t1);
		join(t2);
		print(g + h);
	}
`

const singletonProg = `
	global g = 0;
	global m = 0;
	func w() {
		lock(&m);
		g = g + 1;
		unlock(&m);
	}
	func main() {
		var n = input(0);
		var i = 0;
		var t = 0;
		while (i < n) {
			t = spawn w();
			join(t);
			i = i + 1;
		}
		print(g);
	}
`

func profileDB(t *testing.T, prog *ir.Program, inputs []int64, runs int) *core.ProfileResult {
	t.Helper()
	pr, err := core.Profile(prog, func(run int) core.Execution {
		return core.Execution{Inputs: inputs, Seed: uint64(run + 1)}
	}, runs)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func lastPrint(prog *ir.Program) *ir.Instr {
	var criterion *ir.Instr
	for _, in := range prog.Instrs {
		if in.Op == ir.OpPrint {
			criterion = in
		}
	}
	return criterion
}

// TestRefineAndRetryRace: the full loop on the LUC trigger — gen 1
// rolls back, gen 2 runs the identical execution clean, and every
// attempt matches FastTrack.
func TestRefineAndRetryRace(t *testing.T) {
	prog := lang.MustCompile(pathProg)
	pr := profileDB(t, prog, []int64{5}, 20)
	cache := artifacts.New("")
	m := New(prog, pr.DB, Options{Cache: cache})

	e := core.Execution{Inputs: []int64{500}, Seed: 3}
	ft, err := core.RunFastTrack(prog, e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	attempts, err := m.RunRace(e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 2 {
		t.Fatalf("attempts = %d, want 2 (rollback then clean retry)", len(attempts))
	}
	first, second := attempts[0], attempts[1]
	if first.Generation != 1 || !first.Report.RolledBack {
		t.Fatalf("first attempt: gen=%d rolledback=%v", first.Generation, first.Report.RolledBack)
	}
	if first.Report.Violation.Kind != core.ViolationUnreachableBlock {
		t.Fatalf("violation kind = %q", first.Report.Violation.Kind)
	}
	if second.Generation != 2 || second.Report.RolledBack {
		t.Fatalf("second attempt: gen=%d rolledback=%v violation=%s",
			second.Generation, second.Report.RolledBack, second.Report.Violation)
	}
	for i, a := range attempts {
		if !core.SameRaces(ft, a.Report) {
			t.Fatalf("attempt %d diverged from FastTrack", i)
		}
	}
	if got := m.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}

	// The paper's promise: the same execution never costs a second
	// rollback.
	again, err := m.RunRace(e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || again[0].Report.RolledBack {
		t.Fatalf("re-run after refinement still rolled back (%d attempts)", len(again))
	}
}

// TestRefineAndRetrySingleton covers the singleton-spawn weakening.
func TestRefineAndRetrySingleton(t *testing.T) {
	prog := lang.MustCompile(singletonProg)
	pr := profileDB(t, prog, []int64{1}, 20)
	m := New(prog, pr.DB, Options{Cache: artifacts.New("")})
	e := core.Execution{Inputs: []int64{3}, Seed: 2}
	attempts, err := m.RunRace(e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := attempts[len(attempts)-1]
	if last.Report.RolledBack {
		t.Fatalf("did not converge: last attempt (gen %d) rolled back with %s",
			last.Generation, last.Report.Violation)
	}
	if attempts[0].Report.Violation.Kind != core.ViolationSingletonSpawn {
		t.Fatalf("violation kind = %q", attempts[0].Report.Violation.Kind)
	}
	if m.DB().SingletonSpawns.Has(attempts[0].Report.Violation.Site) {
		t.Fatal("violated singleton fact still in refined DB")
	}
}

// TestRefineAndRetrySlice: the slicer side of the loop against hybrid
// Giri per generation.
func TestRefineAndRetrySlice(t *testing.T) {
	prog := lang.MustCompile(pathProg)
	pr := profileDB(t, prog, []int64{5}, 20)
	m := New(prog, pr.DB, Options{Cache: artifacts.New("")})
	criterion := lastPrint(prog)
	e := core.Execution{Inputs: []int64{500}, Seed: 3}
	full, err := core.RunFullGiri(prog, criterion, e, core.RunOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	attempts, err := m.RunSlice(criterion, 512, e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) < 2 {
		t.Fatalf("attempts = %d, want >= 2", len(attempts))
	}
	last := attempts[len(attempts)-1]
	if last.Report.RolledBack {
		t.Fatalf("last attempt rolled back with %s", last.Report.Violation)
	}
	for i, a := range attempts {
		if !full.Slice.Equal(a.Report.Slice) {
			t.Fatalf("attempt %d slice diverged from full Giri", i)
		}
	}
}

// TestStatusLedgerAndMetrics checks the ledger counters, history
// digests, and metrics registration after one refinement.
func TestStatusLedgerAndMetrics(t *testing.T) {
	prog := lang.MustCompile(pathProg)
	pr := profileDB(t, prog, []int64{5}, 20)
	reg := metrics.NewRegistry()
	met := NewMetrics(reg)
	m := New(prog, pr.DB, Options{Cache: artifacts.New(""), Metrics: met})

	if _, err := m.RunRace(core.Execution{Inputs: []int64{500}, Seed: 3}, core.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if st.Generation != 2 || st.Runs != 2 || st.Rollbacks != 1 {
		t.Fatalf("status = gen %d, runs %d, rollbacks %d", st.Generation, st.Runs, st.Rollbacks)
	}
	if st.SuccessRate != 0.5 {
		t.Fatalf("success rate = %v, want 0.5", st.SuccessRate)
	}
	if st.PostRefineRuns != 1 || st.PostRefineRollbacks != 0 {
		t.Fatalf("post-refine runs/rollbacks = %d/%d, want 1/0", st.PostRefineRuns, st.PostRefineRollbacks)
	}
	if st.ViolationsByKind[core.ViolationUnreachableBlock] != 1 {
		t.Fatalf("violations by kind = %v", st.ViolationsByKind)
	}
	if st.PendingReconcile {
		t.Fatal("pending reconcile after the loop finished")
	}
	if len(st.History) != 2 {
		t.Fatalf("history length = %d, want 2", len(st.History))
	}
	for i, rec := range st.History {
		if rec.Generation != i+1 || rec.DBDigest == "" || rec.MaskDigest == "" {
			t.Fatalf("history[%d] incomplete: %+v", i, rec)
		}
	}
	if st.History[0].DBDigest == st.History[1].DBDigest {
		t.Fatal("refinement did not change the DB digest")
	}
	if len(st.History[1].Causes) != 1 {
		t.Fatalf("gen-2 causes = %v", st.History[1].Causes)
	}
	if met.Refinements.Value() != 1 || met.Violations.With("race", string(core.ViolationUnreachableBlock)).Value() != 1 {
		t.Fatal("metrics not recorded")
	}
	if met.Runs.With("race").Value() != 2 || met.Rollbacks.With("race").Value() != 1 {
		t.Fatal("client-labeled run metrics not recorded")
	}
	if got := st.Clients["race"]; got.Runs != 2 || got.Rollbacks != 1 {
		t.Fatalf("client stats = %+v, want runs 2 rollbacks 1", got)
	}
	if met.ResolveSeconds.Count() != 1 {
		t.Fatalf("resolve latency observations = %d, want 1", met.ResolveSeconds.Count())
	}
}

// TestStaleViolationIsIdempotent: observing the same violation twice
// (as a run that started under the old generation would report) must
// not produce a second generation.
func TestStaleViolationIsIdempotent(t *testing.T) {
	prog := lang.MustCompile(pathProg)
	pr := profileDB(t, prog, []int64{5}, 20)
	m := New(prog, pr.DB, Options{Cache: artifacts.New("")})
	e := core.Execution{Inputs: []int64{500}, Seed: 3}
	if _, err := m.RunRace(e, core.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if m.Generation() != 2 {
		t.Fatalf("generation = %d", m.Generation())
	}
	// Replay the stale report by hand: an old-generation detector
	// finishing late.
	det, _, err := m.Race()
	if err != nil {
		t.Fatal(err)
	}
	stale := &core.RaceReport{RolledBack: true, Violation: core.Violation{
		Kind: core.ViolationUnreachableBlock, Site: m.Status().History[1].Causes[0].Site, Callee: -1}}
	m.ObserveRace(det, e, stale)
	if m.Pending() {
		t.Fatal("stale violation left a pending reconcile")
	}
	if swapped, err := m.Reconcile(nil); err != nil || swapped {
		t.Fatalf("stale violation produced a generation (swapped=%v, err=%v)", swapped, err)
	}
	if m.Generation() != 2 {
		t.Fatalf("generation moved to %d on a stale violation", m.Generation())
	}
}

// TestPolicyThreshold: with Threshold 2 the first violation only
// counts; the second refines.
func TestPolicyThreshold(t *testing.T) {
	prog := lang.MustCompile(pathProg)
	pr := profileDB(t, prog, []int64{5}, 20)
	m := New(prog, pr.DB, Options{Cache: artifacts.New(""), Policy: Policy{Threshold: 2}})
	e := core.Execution{Inputs: []int64{500}, Seed: 3}

	attempts, err := m.RunRace(e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 1 || m.Generation() != 1 {
		t.Fatalf("first violation refined below threshold (attempts=%d gen=%d)", len(attempts), m.Generation())
	}
	attempts, err = m.RunRace(e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation() != 2 {
		t.Fatalf("second violation did not refine (gen=%d)", m.Generation())
	}
	if attempts[len(attempts)-1].Report.RolledBack {
		t.Fatal("post-threshold retry still rolled back")
	}
}

// randomInputs mirrors the core package's property-test input
// generator.
func randomInputs(seed uint64) [][]int64 {
	mix := func(k uint64) int64 {
		z := (seed*31 + k + 1) * 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return int64((z ^ (z >> 27)) % 100)
	}
	out := make([][]int64, 3)
	for i := range out {
		in := make([]int64, 8)
		for j := range in {
			in[j] = mix(uint64(i*8 + j))
		}
		out[i] = in
	}
	return out
}

// TestAdaptationSoundnessProperty is the acceptance property over
// generated programs: at EVERY generation the loop visits, OptFT's
// results equal FastTrack's and OptSlice's equal full Giri's, and the
// execution that triggered a refinement runs clean (RolledBack ==
// false) on the next generation.
func TestAdaptationSoundnessProperty(t *testing.T) {
	const programs = 12
	for seed := uint64(0); seed < programs; seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		inputs := randomInputs(seed)
		pr, err := core.Profile(prog, func(run int) core.Execution {
			return core.Execution{Inputs: inputs[0], Seed: uint64(run + 1)}
		}, 8)
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		cache := artifacts.New("")
		m := New(prog, pr.DB, Options{Cache: cache})
		criterion := lastPrint(prog)

		for _, in := range inputs {
			for _, s := range []uint64{11, 12} {
				e := core.Execution{Inputs: in, Seed: s}
				ft, err := core.RunFastTrack(prog, e, core.RunOptions{})
				if err != nil {
					t.Fatalf("seed %d: fasttrack: %v", seed, err)
				}
				attempts, err := m.RunRace(e, core.RunOptions{})
				if err != nil {
					t.Fatalf("seed %d: adapt race: %v", seed, err)
				}
				for i, a := range attempts {
					if !core.SameRaces(ft, a.Report) {
						t.Fatalf("seed %d: attempt %d (gen %d) diverged from FastTrack\nprogram:\n%s",
							seed, i, a.Generation, src)
					}
					if i > 0 && attempts[i-1].Report.RolledBack &&
						Refinable(attempts[i-1].Report.Violation.Kind) && a.Report.RolledBack &&
						reflect.DeepEqual(a.Report.Violation, attempts[i-1].Report.Violation) {
						t.Fatalf("seed %d: generation %d repeated the refined violation %s\nprogram:\n%s",
							seed, a.Generation, a.Report.Violation, src)
					}
				}
				// The triggering execution runs clean on the final
				// generation unless the loop stopped on a non-refinable
				// cause.
				last := attempts[len(attempts)-1]
				if last.Report.RolledBack && Refinable(last.Report.Violation.Kind) {
					t.Fatalf("seed %d: loop ended rolled-back on refinable %s\nprogram:\n%s",
						seed, last.Report.Violation, src)
				}

				if criterion != nil {
					full, err := core.RunFullGiri(prog, criterion, e, core.RunOptions{}, 0)
					if err != nil {
						t.Fatalf("seed %d: giri: %v", seed, err)
					}
					sattempts, err := m.RunSlice(criterion, 512, e, core.RunOptions{})
					if err != nil {
						t.Fatalf("seed %d: adapt slice: %v", seed, err)
					}
					for i, a := range sattempts {
						if !full.Slice.Equal(a.Report.Slice) {
							t.Fatalf("seed %d: slice attempt %d (gen %d) diverged from Giri\nprogram:\n%s",
								seed, i, a.Generation, src)
						}
					}
				}
			}
		}
	}
}

// TestGenerationSequenceDeterministic: the acceptance determinism
// criterion — the refinement-generation sequence (DB digests and mask
// digests) is bit-identical across independent managers, fresh caches,
// and profiling worker counts.
func TestGenerationSequenceDeterministic(t *testing.T) {
	const seed = uint64(7)
	src := progen.Generate(seed, progen.DefaultConfig())
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	inputs := randomInputs(seed)

	histories := make([][]GenerationRecord, 0, 3)
	for trial, workers := range []int{1, 4, 8} {
		pr, err := core.ProfileWith(prog, func(run int) core.Execution {
			return core.Execution{Inputs: inputs[0], Seed: uint64(run + 1)}
		}, core.ProfileOptions{MaxRuns: 8, Workers: workers})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m := New(prog, pr.DB, Options{Cache: artifacts.New("")})
		criterion := lastPrint(prog)
		for _, in := range inputs {
			for _, s := range []uint64{11, 12} {
				e := core.Execution{Inputs: in, Seed: s}
				if _, err := m.RunRace(e, core.RunOptions{}); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if _, err := m.RunNull(e, core.RunOptions{}); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if criterion != nil {
					if _, err := m.RunSlice(criterion, 512, e, core.RunOptions{}); err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
				}
			}
		}
		histories = append(histories, m.Status().History)
	}
	for trial := 1; trial < len(histories); trial++ {
		a, b := histories[0], histories[trial]
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d generations vs %d", trial, len(b), len(a))
		}
		for i := range a {
			if a[i].DBDigest != b[i].DBDigest || a[i].MaskDigest != b[i].MaskDigest {
				t.Fatalf("trial %d: generation %d fingerprint diverged:\n%+v\n%+v",
					trial, a[i].Generation, a[i], b[i])
			}
		}
	}
}

// TestConcurrentRunsDuringHotSwap hammers one manager from many
// goroutines mixing clean and violating executions: in-flight runs
// must keep their snapshot while generations swap underneath, every
// final report must match FastTrack, and (under -race) the swap must
// be data-race-free.
func TestConcurrentRunsDuringHotSwap(t *testing.T) {
	prog := lang.MustCompile(pathProg)
	pr := profileDB(t, prog, []int64{5}, 20)
	m := New(prog, pr.DB, Options{Cache: artifacts.New("")})

	execs := []core.Execution{
		{Inputs: []int64{5}, Seed: 1},
		{Inputs: []int64{500}, Seed: 3},
		{Inputs: []int64{7}, Seed: 2},
		{Inputs: []int64{900}, Seed: 5},
	}
	want := make([]*core.RaceReport, len(execs))
	for i, e := range execs {
		ft, err := core.RunFastTrack(prog, e, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ft
	}

	const workers = 8
	errs := make(chan error, workers)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for rep := 0; rep < 5; rep++ {
				i := (w + rep) % len(execs)
				attempts, err := m.RunRace(execs[i], core.RunOptions{})
				if err != nil {
					errs <- err
					return
				}
				for _, a := range attempts {
					if !core.SameRaces(want[i], a.Report) {
						errs <- errDiverged
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Converged: one more pass over every execution runs clean.
	for i, e := range execs {
		attempts, err := m.RunRace(e, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(attempts) != 1 || attempts[0].Report.RolledBack {
			t.Fatalf("exec %d still rolls back after convergence", i)
		}
	}
}

var errDiverged = errors.New("adapted run diverged from FastTrack")

// TestWarmCacheIncrementalReanalysis: refining must re-solve only the
// predicated artifacts — the sound ones (keyed on the nil DB) are
// reused from the cache across generations.
func TestWarmCacheIncrementalReanalysis(t *testing.T) {
	prog := lang.MustCompile(pathProg)
	pr := profileDB(t, prog, []int64{5}, 20)
	cache := artifacts.New("")
	m := New(prog, pr.DB, Options{Cache: cache})
	if _, _, err := m.Race(); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if _, err := m.RunRace(core.Execution{Inputs: []int64{500}, Seed: 3}, core.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("no warm-cache reuse across the generation swap (hits %d -> %d)", before.Hits, after.Hits)
	}
	// The sound static pipeline must not have re-solved: misses grow
	// only by the predicated artifacts of the new DB digest (points-to,
	// MHP, static race, compiled images, refined-DB derivation).
	t.Logf("cache misses %d -> %d, hits %d -> %d", before.Misses, after.Misses, before.Hits, after.Hits)
	soundAgain, err := core.NewHybridFTCached(prog, cache)
	if err != nil {
		t.Fatal(err)
	}
	_ = soundAgain
	final := cache.Stats()
	if final.Misses != after.Misses {
		t.Fatal("sound artifacts were not warm after refinement")
	}
}

// nullProg has an input-guarded nil escape: profiling visits both
// branches (inputs span the a>100 split) yet every profiled load of p
// sees &buf, so the deref check is discharged optimistically on the
// non-null fact alone; a huge input skips the repair branch and
// refutes exactly that fact — the null client's refinement trigger,
// with no unreachable-block violation in the way.
const nullProg = `
	global p = 0;
	global buf = 7;
	func main() {
		var a = input(0);
		if (a > 100) {
			p = 0;
		}
		if (a < 1000) {
			p = &buf;
		}
		var v = *p;
		print(v);
	}
`

// TestRefineAndRetryNull: the full loop on the refuted non-null fact —
// gen 1 rolls back to the sound run, gen 2 keeps the residual check
// and runs the identical execution clean, and every attempt reports
// the same nil-deref verdicts as the always-check baseline.
func TestRefineAndRetryNull(t *testing.T) {
	prog := lang.MustCompile(nullProg)
	pr, err := core.Profile(prog, func(run int) core.Execution {
		return core.Execution{Inputs: []int64{int64(run * 40)}, Seed: uint64(run + 1)}
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	cache := artifacts.New("")
	m := New(prog, pr.DB, Options{Cache: cache})

	e := core.Execution{Inputs: []int64{2000}, Seed: 3}
	base, err := core.RunNullAlways(prog, e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.NilSites) != 1 {
		t.Fatalf("baseline nil sites = %v, want one", base.NilSites)
	}

	attempts, err := m.RunNull(e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 2 {
		t.Fatalf("attempts = %d, want 2 (rollback then clean retry)", len(attempts))
	}
	first, second := attempts[0], attempts[1]
	if first.Generation != 1 || !first.Report.RolledBack {
		t.Fatalf("first attempt: gen=%d rolledback=%v", first.Generation, first.Report.RolledBack)
	}
	if first.Report.Violation.Kind != core.ViolationNonNull {
		t.Fatalf("violation kind = %q", first.Report.Violation.Kind)
	}
	if first.Report.DischargedChecks == 0 {
		t.Fatal("gen 1 discharged no checks — nothing was speculative")
	}
	if second.Generation != 2 || second.Report.RolledBack {
		t.Fatalf("second attempt: gen=%d rolledback=%v violation=%s",
			second.Generation, second.Report.RolledBack, second.Report.Violation)
	}
	for i, a := range attempts {
		if !core.SameNullVerdicts(base, a.Report) {
			t.Fatalf("attempt %d: nil sites %v diverged from baseline %v",
				i, a.Report.NilSites, base.NilSites)
		}
	}
	if got := m.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}
	if m.DB().NonNullLoads.Has(first.Report.Violation.Site) {
		t.Fatal("refinement left the refuted non-null fact in place")
	}

	// The refined generation never pays a second rollback for the
	// same execution.
	again, err := m.RunNull(e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || again[0].Report.RolledBack {
		t.Fatalf("post-refinement run: %d attempts, rolledback=%v",
			len(again), again[0].Report.RolledBack)
	}
	st := m.Status()
	if got := st.Clients["nullcheck"]; got.Runs != 3 || got.Rollbacks != 1 {
		t.Fatalf("nullcheck client stats = %+v, want runs 3 rollbacks 1", got)
	}
}
