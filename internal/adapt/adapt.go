// Package adapt closes the optimistic-hybrid-analysis feedback loop
// the paper leaves to the deployment (§2.1's stability/strength
// trade-off, §3's recovery discussion): when a speculative run
// mis-speculates, the violated likely invariant is demoted, the
// predicated static analysis re-runs without it, and a weaker-but-
// stabler configuration is hot-swapped in — so one violation never
// costs a second rollback.
//
// The package is three cooperating pieces:
//
//   - a violation ledger: structured core.Violation records from
//     OptFT/OptSlice rollbacks, accumulated into per-invariant-fact
//     violation counters and per-generation success statistics;
//   - a refinement policy: past Policy.Threshold observations of one
//     fact (default 1, per the paper), the fact is removed from a
//     derived invariants.DB generation using the merge-respecting
//     weaken helpers (Refine);
//   - a re-analysis reconciler: Reconcile recomputes the predicated
//     static artifacts and compiled elision masks for the refined DB
//     through the content-addressed artifact cache — sound artifacts
//     (keyed on the nil DB) stay warm; only the invalidated predicated
//     kinds re-solve — and hot-swaps the new generation in without
//     blocking in-flight runs (immutable snapshots behind an atomic
//     pointer; old detectors finish serving their runs untouched).
//
// Determinism: given the same program, executions, and schedule seeds,
// the sequence of refinement generations (refined-DB serializations
// and compiled-mask digests) is a pure function of the violations
// observed, which the deterministic interpreter makes a pure function
// of the inputs — so the generation history is bit-identical across
// runs and worker counts.
package adapt

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"oha/internal/artifacts"
	"oha/internal/core"
	"oha/internal/inc"
	"oha/internal/interp"
	"oha/internal/invariants"
	"oha/internal/ir"
)

// Policy configures when the manager refines.
type Policy struct {
	// Threshold is the number of observed violations of one invariant
	// fact before it is refined away. Default 1 — the paper's stance: a
	// fact that misfired once will misfire again, and a rollback is
	// expensive enough to never pay twice.
	Threshold int
	// MaxGenerations caps deployed configurations, including the base
	// generation (default 64). At the cap the manager keeps serving
	// (and counting) but stops refining.
	MaxGenerations int
}

func (p Policy) threshold() int {
	if p.Threshold <= 0 {
		return 1
	}
	return p.Threshold
}

func (p Policy) maxGenerations() int {
	if p.MaxGenerations <= 0 {
		return 64
	}
	return p.MaxGenerations
}

// Options configures a Manager.
type Options struct {
	Policy Policy
	// Cache memoizes static artifacts across generations (strongly
	// recommended: it is what makes re-analysis incremental). nil
	// recomputes everything per generation.
	Cache *artifacts.Cache
	// Metrics, when non-nil, records ledger and reconciler activity.
	Metrics *Metrics
	// Static configures the static re-analysis pipeline: parallel
	// solver workers and whether Reconcile may resume incrementally
	// from the previous generation's saturated solver state (requires
	// Cache; the solver-state bundle lives there).
	Static core.StaticConfig
	// Inc, when non-nil, receives the static pipeline's per-phase
	// latencies and the incremental constraint-reuse ratio.
	Inc *inc.Metrics
	// MaxTraceNodes / NoBloom are forwarded to every OptSlice the
	// manager builds (0 / false: the dynslice defaults).
	MaxTraceNodes int
	NoBloom       bool
}

// GenerationRecord describes one deployed configuration.
type GenerationRecord struct {
	// Generation numbers configurations from 1 (the base DB).
	Generation int `json:"generation"`
	// Causes are the violations whose refinements this generation
	// deployed (empty for the base generation). Several violations
	// observed before one reconcile fold into one generation.
	Causes []core.Violation `json:"causes,omitempty"`
	// DBDigest is the SHA-256 of the generation's invariant database
	// serialization; MaskDigest the content digest of the race
	// detector's compiled configuration — instrumentation masks plus
	// inline-cache seeds and fusion setting (set once the detector is
	// built). Together they fingerprint the deployed configuration for
	// the determinism guarantee; refining a callee-set fact changes
	// both.
	DBDigest   string `json:"db_digest"`
	MaskDigest string `json:"mask_digest,omitempty"`
	// ResolveSeconds is the re-analysis latency that produced this
	// generation (0 for the base).
	ResolveSeconds float64 `json:"resolve_seconds"`
	// StaticMode records how the generation's static artifacts were
	// computed: "cached", "incremental", or "scratch" (empty for the
	// base generation and for cache-less managers).
	StaticMode string `json:"static_mode,omitempty"`
	// ReuseRatio is the fraction of points-to constraints inherited
	// from the previous generation's saturated solver state (0 outside
	// incremental mode).
	ReuseRatio float64 `json:"reuse_ratio,omitempty"`
}

// Status is a consistent snapshot of the manager, served by the
// daemon's GET /speculation.
type Status struct {
	Generation          int     `json:"generation"`
	Runs                uint64  `json:"runs"`
	Rollbacks           uint64  `json:"rollbacks"`
	SuccessRate         float64 `json:"success_rate"`
	PostRefineRuns      uint64  `json:"post_refine_runs"`
	PostRefineRollbacks uint64  `json:"post_refine_rollbacks"`
	// ViolationsByKind counts observed violations per invariant kind.
	ViolationsByKind map[core.ViolationKind]uint64 `json:"violations_by_kind,omitempty"`
	// Clients breaks runs and rollbacks down per analysis client
	// (race, slice, nullcheck), keyed by core.Client name.
	Clients map[string]ClientStats `json:"clients,omitempty"`
	// PendingReconcile reports that refinements await a Reconcile.
	PendingReconcile bool `json:"pending_reconcile"`
	// StaticMode and IncReuseRatio mirror the latest non-base
	// generation's static-pipeline provenance (see GenerationRecord).
	StaticMode    string             `json:"static_mode,omitempty"`
	IncReuseRatio float64            `json:"inc_reuse_ratio,omitempty"`
	History       []GenerationRecord `json:"history"`
	// IC aggregates the compiled engine's speculative-dispatch
	// counters (inline-cache hits/misses/deopts, fused
	// superinstruction executions) over every observed run.
	IC interp.ICStats `json:"ic"`
}

// ClientStats counts one client's observed runs and rollbacks.
type ClientStats struct {
	Runs      uint64 `json:"runs"`
	Rollbacks uint64 `json:"rollbacks"`
}

// Manager owns the adaptive state for one (program, base DB) pair. It
// implements core.Adapter, so it can be installed as RunOptions.Adapt
// on any OptFT/OptSlice run; the RunRace/RunSlice helpers add the
// refine-and-retry loop on top. All methods are safe for concurrent
// use.
type Manager struct {
	prog          *ir.Program
	cache         *artifacts.Cache
	policy        Policy
	met           *Metrics
	static        core.StaticConfig
	incMet        *inc.Metrics
	maxTraceNodes int
	noBloom       bool

	// cur is the published generation; reads are lock-free, so
	// in-flight runs keep their snapshot while a swap lands.
	cur atomic.Pointer[generation]

	mu         sync.Mutex
	runs       uint64
	rollbacks  uint64
	prRuns     uint64 // runs under generation > 1
	prRolls    uint64
	byKind     map[core.ViolationKind]uint64
	byClient   map[string]ClientStats
	ic         interp.ICStats
	factCounts map[string]int
	// latest is the newest derived DB — always at least as weak as
	// every published or in-flight generation. nextCauses are the
	// violations folded into latest but not yet captured by a
	// reconcile.
	latest      *invariants.DB
	nextCauses  []core.Violation
	reconciling bool
	history     []GenerationRecord
}

var _ core.Adapter = (*Manager)(nil)

// generation is one immutable deployed configuration. The race
// detector and per-criterion slicers are built lazily and memoized;
// construction goes through the shared artifact cache, so a rebuild of
// an already-solved configuration is cheap.
type generation struct {
	n  int
	db *invariants.DB
	m  *Manager

	raceOnce sync.Once
	raceDet  *core.OptFT
	raceErr  error

	nullOnce sync.Once
	nullDet  *core.OptNull
	nullErr  error

	mu      sync.Mutex
	slicers map[slicerKey]*core.OptSlice
}

type slicerKey struct {
	criterion int
	budget    int
}

// New returns a manager for prog with base invariant database db
// (treated as immutable; generation 1). The expensive static solve is
// deferred to the first Race/Slice call.
func New(prog *ir.Program, db *invariants.DB, o Options) *Manager {
	m := &Manager{
		prog:          prog,
		cache:         o.Cache,
		policy:        o.Policy,
		met:           o.Metrics,
		static:        o.Static,
		incMet:        o.Inc,
		maxTraceNodes: o.MaxTraceNodes,
		noBloom:       o.NoBloom,
		byKind:        map[core.ViolationKind]uint64{},
		byClient:      map[string]ClientStats{},
		factCounts:    map[string]int{},
		latest:        db,
	}
	m.cur.Store(&generation{n: 1, db: db, m: m, slicers: map[slicerKey]*core.OptSlice{}})
	m.history = []GenerationRecord{{Generation: 1, DBDigest: artifacts.DBDigest(db)}}
	return m
}

// Prog returns the managed program.
func (m *Manager) Prog() *ir.Program { return m.prog }

// Generation returns the published generation number.
func (m *Manager) Generation() int { return m.cur.Load().n }

// DB returns the published generation's invariant database (immutable).
func (m *Manager) DB() *invariants.DB { return m.cur.Load().db }

// Race returns the published generation's race detector and its
// generation number, building (and memoizing) it on first use.
func (m *Manager) Race() (*core.OptFT, int, error) {
	g := m.cur.Load()
	det, err := g.race()
	return det, g.n, err
}

// Slice returns the published generation's slicer for one criterion
// and budget, building (and memoizing) it on first use.
func (m *Manager) Slice(criterion *ir.Instr, budget int) (*core.OptSlice, int, error) {
	g := m.cur.Load()
	sl, err := g.slicer(criterion, budget)
	return sl, g.n, err
}

// Null returns the published generation's null checker and its
// generation number, building (and memoizing) it on first use.
func (m *Manager) Null() (*core.OptNull, int, error) {
	g := m.cur.Load()
	det, err := g.null()
	return det, g.n, err
}

func (g *generation) race() (*core.OptFT, error) {
	g.raceOnce.Do(func() {
		g.raceDet, g.raceErr = core.NewOptFTStatic(g.m.prog, g.db, g.m.cache, g.m.static)
		if g.raceErr == nil {
			g.m.setMaskDigest(g.n, g.raceDet.CodeDigest())
		}
	})
	return g.raceDet, g.raceErr
}

func (g *generation) null() (*core.OptNull, error) {
	g.nullOnce.Do(func() {
		start := time.Now()
		g.nullDet, g.nullErr = core.NewOptNullStatic(g.m.prog, g.db, g.m.cache, g.m.static)
		if g.nullErr == nil {
			g.m.incMet.ObservePhase("nullproof", "nullcheck", time.Since(start).Seconds())
			g.m.setMaskDigest(g.n, g.nullDet.CodeDigest())
		}
	})
	return g.nullDet, g.nullErr
}

func (g *generation) slicer(criterion *ir.Instr, budget int) (*core.OptSlice, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := slicerKey{criterion: criterion.ID, budget: budget}
	if sl, ok := g.slicers[k]; ok {
		return sl, nil
	}
	sl, err := core.NewOptSliceStatic(g.m.prog, g.db, criterion, budget, g.m.cache, g.m.static)
	if err != nil {
		return nil, err
	}
	sl.MaxTraceNodes = g.m.maxTraceNodes
	sl.NoBloom = g.m.noBloom
	g.slicers[k] = sl
	return sl, nil
}

// setMaskDigest back-fills a generation's mask digest into the history
// once its first detector is built (first-wins: one fingerprint per
// generation, whichever client materializes first).
func (m *Manager) setMaskDigest(gen int, digest string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.history {
		if m.history[i].Generation == gen {
			if m.history[i].MaskDigest == "" {
				m.history[i].MaskDigest = digest
			}
			return
		}
	}
}

// ObserveRace implements core.Adapter: it feeds one race report into
// the ledger and, past the policy threshold, derives the refined DB.
// Reports from foreign programs are ignored; the expensive re-solve is
// deferred to Reconcile.
func (m *Manager) ObserveRace(o *core.OptFT, _ core.Execution, rep *core.RaceReport) {
	if o == nil || rep == nil || o.Prog != m.prog {
		return
	}
	m.observe("race", rep.RolledBack, rep.Violation, rep.IC)
}

// ObserveSlice implements core.Adapter for slice reports.
func (m *Manager) ObserveSlice(o *core.OptSlice, _ core.Execution, rep *core.SliceReport) {
	if o == nil || rep == nil || o.Prog != m.prog {
		return
	}
	m.observe("slice", rep.RolledBack, rep.Violation, rep.IC)
}

// ObserveNull implements core.Adapter for null-check reports.
func (m *Manager) ObserveNull(o *core.OptNull, _ core.Execution, rep *core.NullReport) {
	if o == nil || rep == nil || o.Prog != m.prog {
		return
	}
	m.observe("nullcheck", rep.RolledBack, rep.Violation, rep.IC)
}

func (m *Manager) observe(client string, rolledBack bool, v core.Violation, ic interp.ICStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ic.Add(ic)
	gen := m.cur.Load().n
	m.runs++
	cs := m.byClient[client]
	cs.Runs++
	if gen > 1 {
		m.prRuns++
	}
	if rolledBack {
		m.rollbacks++
		cs.Rollbacks++
		if gen > 1 {
			m.prRolls++
		}
		m.byKind[v.Kind]++
	}
	m.byClient[client] = cs
	m.met.observeRun(client, rolledBack, gen > 1, string(v.Kind))
	if !rolledBack || !Refinable(v.Kind) {
		return
	}
	key := factKey(v)
	m.factCounts[key]++
	if m.factCounts[key] < m.policy.threshold() {
		return
	}
	if len(m.history) >= m.policy.maxGenerations() {
		return
	}
	refined := m.derive(m.latest, v)
	if refined == nil {
		// Stale: the fact is already gone from the newest DB (the run
		// started under an older generation). No generation owed.
		return
	}
	m.latest = refined
	m.nextCauses = append(m.nextCauses, v)
}

// derive returns latest weakened by v, or nil if v's fact is already
// absent. The result is memoized under KindRefined (with DBCodec), so
// a restarted daemon with a warm disk cache replays refinements
// without re-deriving them.
func (m *Manager) derive(base *invariants.DB, v core.Violation) *invariants.DB {
	refined := base.Clone()
	if !Refine(refined, v) {
		return nil
	}
	if m.cache != nil {
		key := artifacts.Key(artifacts.KindRefined, m.prog, base, 0, factKey(v))
		if got, err := m.cache.Memo(key, artifacts.DBCodec(), func() (any, error) {
			return refined, nil
		}); err == nil {
			return got.(*invariants.DB)
		}
	}
	return refined
}

// Pending reports whether refinements await a Reconcile (including one
// currently in flight).
func (m *Manager) Pending() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest != m.cur.Load().db
}

// Reconcile performs the background re-analysis for any pending
// refined DB: it rebuilds the predicated static artifacts and compiled
// masks (through the artifact cache — sound artifacts stay warm, only
// predicated kinds re-solve under the new DB digest) and hot-swaps the
// new generation in. In-flight runs keep their old snapshot. Returns
// whether a new generation was published. Safe to call from multiple
// goroutines; at most one re-solve runs at a time, extra callers
// return (false, nil).
func (m *Manager) Reconcile(ctx context.Context) (bool, error) {
	m.mu.Lock()
	cur := m.cur.Load()
	if m.reconciling || m.latest == cur.db {
		m.mu.Unlock()
		return false, nil
	}
	m.reconciling = true
	db := m.latest
	causes := m.nextCauses
	m.nextCauses = nil
	n := cur.n + 1
	m.mu.Unlock()

	fail := func(err error) (bool, error) {
		m.mu.Lock()
		m.reconciling = false
		m.nextCauses = append(causes, m.nextCauses...)
		m.mu.Unlock()
		return false, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
	}

	start := time.Now()
	// Prewarm the static artifacts through the incremental pipeline:
	// Reanalyze resumes from the previous generation's saturated solver
	// state (or solves in parallel from scratch) and publishes the
	// results under the new DB's digest — so g.race() below finds every
	// static kind already cached and only rebuilds masks + bytecode. A
	// Reanalyze error is non-fatal: g.race() recomputes on its own.
	var st inc.Stats
	if m.cache != nil {
		if _, s, err := inc.Reanalyze(m.prog, cur.db, db, m.cache, inc.Options{
			Workers:     m.static.Workers,
			Incremental: m.static.Incremental,
			Metrics:     m.incMet,
		}); err == nil {
			st = s
		}
	}
	maskStart := time.Now()
	g := &generation{n: n, db: db, m: m, slicers: map[slicerKey]*core.OptSlice{}}
	det, err := g.race() // the eager part of the re-solve
	if err != nil {
		return fail(err)
	}
	m.incMet.ObservePhase("masks", "race", time.Since(maskStart).Seconds())
	elapsed := time.Since(start).Seconds()

	m.mu.Lock()
	m.history = append(m.history, GenerationRecord{
		Generation:     n,
		Causes:         causes,
		DBDigest:       artifacts.DBDigest(db),
		MaskDigest:     det.CodeDigest(),
		ResolveSeconds: elapsed,
		StaticMode:     st.Mode,
		ReuseRatio:     st.ReuseRatio,
	})
	m.reconciling = false
	m.cur.Store(g)
	m.mu.Unlock()
	m.met.observeSwap(elapsed)
	return true, nil
}

// Status returns a consistent snapshot.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Generation:          m.cur.Load().n,
		Runs:                m.runs,
		Rollbacks:           m.rollbacks,
		PostRefineRuns:      m.prRuns,
		PostRefineRollbacks: m.prRolls,
		PendingReconcile:    m.latest != m.cur.Load().db,
		History:             append([]GenerationRecord(nil), m.history...),
		IC:                  m.ic,
	}
	if m.runs > 0 {
		st.SuccessRate = float64(m.runs-m.rollbacks) / float64(m.runs)
	}
	if len(m.byKind) > 0 {
		st.ViolationsByKind = make(map[core.ViolationKind]uint64, len(m.byKind))
		for k, v := range m.byKind {
			st.ViolationsByKind[k] = v
		}
	}
	if len(m.byClient) > 0 {
		st.Clients = make(map[string]ClientStats, len(m.byClient))
		for k, v := range m.byClient {
			st.Clients[k] = v
		}
	}
	for i := len(m.history) - 1; i > 0; i-- {
		if m.history[i].StaticMode != "" {
			st.StaticMode = m.history[i].StaticMode
			st.IncReuseRatio = m.history[i].ReuseRatio
			break
		}
	}
	return st
}

// RaceAttempt is one generation's attempt within RunRace.
type RaceAttempt struct {
	Generation int              `json:"generation"`
	Report     *core.RaceReport `json:"report"`
}

// SliceAttempt is one generation's attempt within RunSlice.
type SliceAttempt struct {
	Generation int               `json:"generation"`
	Report     *core.SliceReport `json:"report"`
}

// RunRace runs the refine-and-retry loop for one execution: run under
// the current generation; on a refinable rollback, reconcile and
// retry under the new one. The last attempt's report is authoritative
// (rollback re-execution makes every attempt sound; retries only
// recover speculation). The loop terminates because each refinement
// strictly weakens a finite fact set, and Policy.MaxGenerations caps
// it besides. opts.Adapt is overridden with m.
func (m *Manager) RunRace(e core.Execution, opts core.RunOptions) ([]RaceAttempt, error) {
	opts.Adapt = m
	var attempts []RaceAttempt
	for {
		det, gen, err := m.Race()
		if err != nil {
			return attempts, err
		}
		rep, err := det.Run(e, opts)
		if err != nil {
			return attempts, err
		}
		attempts = append(attempts, RaceAttempt{Generation: gen, Report: rep})
		if !rep.RolledBack || !Refinable(rep.Violation.Kind) {
			return attempts, nil
		}
		swapped, err := m.Reconcile(opts.Ctx)
		if err != nil {
			return attempts, err
		}
		if !swapped {
			return attempts, nil
		}
	}
}

// NullAttempt is one generation's attempt within RunNull.
type NullAttempt struct {
	Generation int              `json:"generation"`
	Report     *core.NullReport `json:"report"`
}

// RunNull is RunRace for the null checker: run under the current
// generation; on a refinable rollback (a refuted non-null fact, an
// unreachable-block or callee-set miss), reconcile and retry under the
// refined configuration.
func (m *Manager) RunNull(e core.Execution, opts core.RunOptions) ([]NullAttempt, error) {
	opts.Adapt = m
	var attempts []NullAttempt
	for {
		det, gen, err := m.Null()
		if err != nil {
			return attempts, err
		}
		rep, err := det.Run(e, opts)
		if err != nil {
			return attempts, err
		}
		attempts = append(attempts, NullAttempt{Generation: gen, Report: rep})
		if !rep.RolledBack || !Refinable(rep.Violation.Kind) {
			return attempts, nil
		}
		swapped, err := m.Reconcile(opts.Ctx)
		if err != nil {
			return attempts, err
		}
		if !swapped {
			return attempts, nil
		}
	}
}

// RunSlice is RunRace for the slicer (one criterion and static
// budget).
func (m *Manager) RunSlice(criterion *ir.Instr, budget int, e core.Execution, opts core.RunOptions) ([]SliceAttempt, error) {
	opts.Adapt = m
	var attempts []SliceAttempt
	for {
		sl, gen, err := m.Slice(criterion, budget)
		if err != nil {
			return attempts, err
		}
		rep, err := sl.Run(e, opts)
		if err != nil {
			return attempts, err
		}
		attempts = append(attempts, SliceAttempt{Generation: gen, Report: rep})
		if !rep.RolledBack || !Refinable(rep.Violation.Kind) {
			return attempts, nil
		}
		swapped, err := m.Reconcile(opts.Ctx)
		if err != nil {
			return attempts, err
		}
		if !swapped {
			return attempts, nil
		}
	}
}
