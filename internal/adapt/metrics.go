package adapt

import "oha/internal/metrics"

// Metrics is the adaptive layer's instrumentation, shared by every
// Manager bound to one registry (the daemon registers one set and
// hands it to each per-(program, DB) manager). The run-level families
// carry a client label — one metric family serves every registered
// analysis client (race, slice, nullcheck) instead of stamping the
// client into per-family metric names. All fields are non-nil after
// NewMetrics; a nil *Metrics disables recording.
type Metrics struct {
	// Runs / Rollbacks count observed optimistic runs and their
	// mis-speculations (all generations), by client.
	Runs      *metrics.CounterVec
	Rollbacks *metrics.CounterVec
	// PostRefineRuns / PostRefineRollbacks count only runs observed
	// under a refined (generation > 1) configuration — their ratio is
	// the post-refinement rollback rate the adaptation is supposed to
	// drive toward zero.
	PostRefineRuns      *metrics.CounterVec
	PostRefineRollbacks *metrics.CounterVec
	// Violations counts violations by client and invariant kind.
	Violations *metrics.CounterVec
	// Refinements counts deployed refinement generations (hot-swaps).
	// Generations are per-manager, not per-client: one swap serves all
	// clients, so these two stay unlabeled.
	Refinements *metrics.Counter
	// ResolveSeconds observes the latency of each background
	// re-analysis (static re-solve + recompile) that produced a
	// generation.
	ResolveSeconds *metrics.Histogram
}

// NewMetrics registers the adaptive metrics on r (nil r: working but
// unregistered metrics, matching the metrics package convention).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Runs:                r.NewCounterVec("oha_adapt_runs_total", "Optimistic runs observed by the adaptive manager.", "client"),
		Rollbacks:           r.NewCounterVec("oha_adapt_rollbacks_total", "Observed runs that rolled back.", "client"),
		PostRefineRuns:      r.NewCounterVec("oha_adapt_post_refine_runs_total", "Runs observed under a refined (generation > 1) configuration.", "client"),
		PostRefineRollbacks: r.NewCounterVec("oha_adapt_post_refine_rollbacks_total", "Refined-configuration runs that still rolled back.", "client"),
		Violations:          r.NewCounterVec("oha_adapt_violations_total", "Invariant violations by client and kind.", "client", "kind"),
		Refinements:         r.NewCounter("oha_adapt_refinements_total", "Refinement generations deployed (hot-swaps)."),
		ResolveSeconds:      r.NewHistogram("oha_adapt_resolve_seconds", "Latency of the background re-analysis producing each generation."),
	}
}

func (m *Metrics) observeRun(client string, rolledBack, postRefine bool, kind string) {
	if m == nil {
		return
	}
	// Materialize every per-client child up front so a client that has
	// never rolled back still exposes an explicit zero series.
	m.Runs.With(client).Inc()
	rollbacks := m.Rollbacks.With(client)
	postRuns := m.PostRefineRuns.With(client)
	postRollbacks := m.PostRefineRollbacks.With(client)
	if postRefine {
		postRuns.Inc()
	}
	if !rolledBack {
		return
	}
	rollbacks.Inc()
	if postRefine {
		postRollbacks.Inc()
	}
	if kind != "" {
		m.Violations.With(client, kind).Inc()
	}
}

func (m *Metrics) observeSwap(resolveSeconds float64) {
	if m == nil {
		return
	}
	m.Refinements.Inc()
	m.ResolveSeconds.Observe(resolveSeconds)
}
