package adapt

import "oha/internal/metrics"

// Metrics is the adaptive layer's instrumentation, shared by every
// Manager bound to one registry (the daemon registers one set and
// hands it to each per-(program, DB) manager). All fields are
// non-nil after NewMetrics; a nil *Metrics disables recording.
type Metrics struct {
	// Runs / Rollbacks count observed optimistic runs and their
	// mis-speculations (all generations).
	Runs      *metrics.Counter
	Rollbacks *metrics.Counter
	// PostRefineRuns / PostRefineRollbacks count only runs observed
	// under a refined (generation > 1) configuration — their ratio is
	// the post-refinement rollback rate the adaptation is supposed to
	// drive toward zero.
	PostRefineRuns      *metrics.Counter
	PostRefineRollbacks *metrics.Counter
	// Violations counts violations by invariant kind.
	Violations *metrics.CounterVec
	// Refinements counts deployed refinement generations (hot-swaps).
	Refinements *metrics.Counter
	// ResolveSeconds observes the latency of each background
	// re-analysis (static re-solve + recompile) that produced a
	// generation.
	ResolveSeconds *metrics.Histogram
}

// NewMetrics registers the adaptive metrics on r (nil r: working but
// unregistered metrics, matching the metrics package convention).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Runs:                r.NewCounter("oha_adapt_runs_total", "Optimistic runs observed by the adaptive manager."),
		Rollbacks:           r.NewCounter("oha_adapt_rollbacks_total", "Observed runs that rolled back."),
		PostRefineRuns:      r.NewCounter("oha_adapt_post_refine_runs_total", "Runs observed under a refined (generation > 1) configuration."),
		PostRefineRollbacks: r.NewCounter("oha_adapt_post_refine_rollbacks_total", "Refined-configuration runs that still rolled back."),
		Violations:          r.NewCounterVec("oha_adapt_violations_total", "Invariant violations by kind.", "kind"),
		Refinements:         r.NewCounter("oha_adapt_refinements_total", "Refinement generations deployed (hot-swaps)."),
		ResolveSeconds:      r.NewHistogram("oha_adapt_resolve_seconds", "Latency of the background re-analysis producing each generation."),
	}
}

func (m *Metrics) observeRun(rolledBack, postRefine bool, kind string) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	if postRefine {
		m.PostRefineRuns.Inc()
	}
	if !rolledBack {
		return
	}
	m.Rollbacks.Inc()
	if postRefine {
		m.PostRefineRollbacks.Inc()
	}
	if kind != "" {
		m.Violations.With(kind).Inc()
	}
}

func (m *Metrics) observeSwap(resolveSeconds float64) {
	if m == nil {
		return
	}
	m.Refinements.Inc()
	m.ResolveSeconds.Observe(resolveSeconds)
}
