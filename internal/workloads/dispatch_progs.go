package workloads

import "oha/internal/progen"

// Dispatch-heavy workloads: indirect calls through a function table
// dominate the hot loops, modeling interpreter-style dispatch (the
// perl/vim shape) at a density high enough to measure the compiled
// engine's speculative inline caches and superinstruction fusion.
// input(0) selects the per-site polymorphism (see progen's
// GenerateDispatch); the remaining inputs seed the worker threads.
//
// These are instrumentation/benchmark workloads: they are registered
// for All()/ByName but deliberately NOT part of the fixed Races() or
// Slices() suites (they model no Figure 5/6 benchmark, and their
// unsynchronized scratch-array stores are genuinely racy).

func dispatchInput(sel int64) func(run int) []int64 {
	return func(run int) []int64 {
		r := newRng(uint64(run)*31 + uint64(sel) + 5)
		return []int64{sel, r.intn(64), r.intn(64)}
	}
}

var _ = register(&Workload{
	Name:     "dispatch-mono",
	Kind:     Race,
	Source:   progen.GenerateDispatch(11, progen.DispatchConfig{Funcs: 4, Workers: 2, Sites: 3, Iters: 64}),
	GenInput: dispatchInput(0),
	Notes: "monomorphic indirect dispatch: every table load resolves to " +
		"slot 0, so each call site has a single likely callee and the " +
		"inline cache hits on every dispatch",
})

var _ = register(&Workload{
	Name:     "dispatch-poly",
	Kind:     Race,
	Source:   progen.GenerateDispatch(12, progen.DispatchConfig{Funcs: 4, Workers: 2, Sites: 3, Iters: 64}),
	GenInput: dispatchInput(3),
	Notes: "polymorphic indirect dispatch over four distinct targets " +
		"per site — exactly the inline-cache capacity, the hardest " +
		"profile that still speculates",
})
