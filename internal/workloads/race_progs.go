package workloads

// OptFT suite: models of the multithreaded Dacapo and JavaGrande
// benchmarks (§6.1.1). Structural notes:
//
//   - Shared read-only state is initialized by main-thread loops
//     before the first spawn: the sound analysis proves those pairs
//     ordered (fork-join MHP), so hybrid FastTrack already elides them
//     — our stand-in for data race-freedom that sound analysis CAN
//     establish.
//   - Lock-guarded shared state cannot be pruned soundly (no must-
//     alias), so hybrid FastTrack instruments it; the likely-guarding-
//     locks invariant lets OptFT elide it.
//   - Helper-spawned threads look multi-instance to the sound
//     analysis; the likely-singleton-thread invariant recovers them.
//   - Error-handling paths never taken in profiling are
//     likely-unreachable code.
//   - montecarlo and sunflow spawn workers in loops over one shared
//     output object: the lockset-based detector is "algorithmically
//     unequipped" for such barrier parallelism, so OptFT gains little.
//   - sor/sparse/series/crypt/lufact use singleton spawns in main and
//     disjoint per-thread buffers: provably race-free even soundly.

func init() {
	register(&Workload{
		Name: "lusearch",
		Kind: Race,
		Notes: "text search over a mutable index: every query scans (and inserts " +
			"into) the index under one coarse lock, which only the likely-" +
			"guarding-locks invariant can prune (paper: 3.0x over hybrid)",
		Source: `
			global index[64];
			global hits = 0;
			global ilock = 0;
			global badqueries = 0;

			func search(qbase, nq, reps) {
				var r = 0;
				while (r < reps) {
					var q = 0;
					while (q < nq) {
						var term = input(qbase + q);
						if (term < 0) {
							// Malformed query: never happens in practice (LUC).
							badqueries = badqueries + 1;
							q = q + 1;
						} else {
							lock(&ilock);
							var found = 0;
							var i = 0;
							while (i < 64) {
								if (index[i] == term % 977) { found = found + 1; }
								i = i + 1;
							}
							// Search-and-insert: queries update term stats,
							// so the index is written concurrently too.
							index[term % 64] = term % 977;
							hits = hits + found;
							unlock(&ilock);
							q = q + 1;
						}
					}
					r = r + 1;
				}
			}

			func main() {
				var i = 0;
				while (i < 64) {
					index[i] = (i * 2654435761) % 977;
					i = i + 1;
				}
				var reps = input(0);
				var nq = input(1);
				var t1 = spawn search(2, nq, reps);
				var t2 = spawn search(2 + nq, nq, reps);
				join(t1);
				join(t2);
				print(hits);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 11)
			in := []int64{8, 4}
			for i := 0; i < 8; i++ {
				in = append(in, r.intn(5000))
			}
			return in
		},
	})

	register(&Workload{
		Name: "pmd",
		Kind: Race,
		Notes: "source analysis: striped locks over a shared rule cache defeat the " +
			"guarding-locks invariant, so OptFT gains little over hybrid (paper: 1.3x)",
		Source: `
			global cache[32];
			global stripes[2];
			global done = 0;
			global dlock = 0;

			func analyze(base, nfiles) {
				var f = 0;
				while (f < nfiles) {
					var tokens = input(base + f);
					var t = 0;
					while (t < tokens) {
						var h = (t * 31 + tokens) % 32;
						// Striped locking: one site locks two dynamic
						// objects, so no must-alias pair forms.
						lock(stripes + (h % 2));
						cache[h] = cache[h] + 1;
						unlock(stripes + (h % 2));
						t = t + 1;
					}
					lock(&dlock);
					done = done + 1;
					unlock(&dlock);
					f = f + 1;
				}
			}

			func main() {
				var nfiles = input(0);
				var t1 = spawn analyze(1, nfiles);
				var t2 = spawn analyze(1 + nfiles, nfiles);
				join(t1);
				join(t2);
				var sum = 0;
				var i = 0;
				while (i < 32) { sum = sum + cache[i]; i = i + 1; }
				print(sum);
				print(done);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 23)
			in := []int64{4}
			for i := 0; i < 8; i++ {
				in = append(in, 8+r.intn(24))
			}
			return in
		},
	})

	register(&Workload{
		Name: "raytracer",
		Kind: Race,
		Notes: "JavaGrande ray tracer: read-only scene, per-thread framebuffers, " +
			"lock-guarded shared checksum; OptFT near framework cost (paper: 3.6x over hybrid)",
		Source: `
			global scene[48];
			global checksum = 0;
			global clock_ = 0;

			func render(fb, rows, width) {
				var y = 0;
				while (y < rows) {
					var x = 0;
					while (x < width) {
						// Ray-object intersection: scan the whole scene
						// per pixel (read-only, elidable work dominates).
						var best = 0;
						var o = 0;
						while (o < 48) {
							var d = scene[o] - (x * 3 + y * 7) % 997;
							if (d < 0) { d = 0 - d; }
							if (d > best) { best = d; }
							o = o + 1;
						}
						var color = best % 255;
						fb[y * width + x] = color;
						lock(&clock_);
						checksum = checksum + color;
						unlock(&clock_);
						x = x + 1;
					}
					y = y + 1;
				}
			}

			func main() {
				var i = 0;
				while (i < 48) {
					scene[i] = (i * i * 37 + input(1)) % 1000;
					i = i + 1;
				}
				var rows = input(0);
				var width = 8;
				var fb1 = alloc(rows * width);
				var fb2 = alloc(rows * width);
				var t1 = spawn render(fb1, rows, width);
				var t2 = spawn render(fb2, rows, width);
				join(t1);
				join(t2);
				print(checksum);
				print(fb1[0] + fb2[0]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 31)
			return []int64{14 + r.intn(6), r.intn(1 << 20)}
		},
	})

	register(&Workload{
		Name: "moldyn",
		Kind: Race,
		Notes: "molecular dynamics: shared particle state under one lock, " +
			"per-thread scratch; OptFT elides the force accumulation (paper: 3.5x)",
		Source: `
			global pos[32];
			global vel[32];
			global energy = 0;
			global elock = 0;

			func forces(lo, hi, steps) {
				var scratch = alloc(32);
				var s = 0;
				while (s < steps) {
					var i = lo;
					while (i < hi) {
						var f = 0;
						var j = 0;
						while (j < 32) {
							var d = pos[i] - pos[j];
							if (d < 0) { d = 0 - d; }
							f = f + d % 17;
							j = j + 1;
						}
						scratch[i] = f;
						lock(&elock);
						energy = energy + f;
						unlock(&elock);
						i = i + 1;
					}
					s = s + 1;
				}
			}

			func main() {
				var i = 0;
				while (i < 32) {
					pos[i] = (i * 1103515245 + input(1)) % 512;
					vel[i] = 0;
					i = i + 1;
				}
				var steps = input(0);
				var t1 = spawn forces(0, 16, steps);
				var t2 = spawn forces(16, 32, steps);
				join(t1);
				join(t2);
				print(energy);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 41)
			return []int64{5 + r.intn(3), r.intn(1 << 16)}
		},
	})

	register(&Workload{
		Name: "sunflow",
		Kind: Race,
		Notes: "fork-join renderer: loop-spawned workers share one output buffer, " +
			"so the lockset detector cannot prune (paper: 1.1x over hybrid)",
		Source: `
			global buckets = 0;
			global img = 0;
			global lens[32];

			func renderBucket(base, n) {
				var p = img;
				var i = 0;
				while (i < n) {
					var acc = 0;
					var smp = 0;
					while (smp < 16) {
						acc = acc + lens[(base + i + smp) % 32] * (smp + 1);
						smp = smp + 1;
					}
					p[base + i] = acc % 255;
					i = i + 1;
				}
			}

			func main() {
				var nb = input(0);
				var per = input(1);
				var li = 0;
				while (li < 32) {
					lens[li] = (li * 23 + input(1)) % 101;
					li = li + 1;
				}
				img = alloc(nb * per);
				buckets = nb;
				var b = 0;
				var last = 0;
				while (b < nb) {
					// Spawned in a loop: statically non-singleton, and all
					// instances write the same abstract object.
					last = spawn renderBucket(b * per, per);
					join(last);
					b = b + 1;
				}
				var q = img;
				print(q[0] + q[nb * per - 1]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 53)
			return []int64{4 + r.intn(3), 48 + r.intn(32)}
		},
	})

	register(&Workload{
		Name: "montecarlo",
		Kind: Race,
		Notes: "barrier-style Monte Carlo: per-task results slot in a shared array " +
			"written by loop-spawned workers (paper: 0.99x — OptFT cannot help)",
		Source: `
			global results[16];
			global seeds[16];
			global gauss[64];

			func simulate(task, paths) {
				var acc = 0;
				var s = seeds[task];
				var p = 0;
				while (p < paths) {
					s = (s * 1103515245 + 12345) % 2147483647;
					// Table-driven sampling: the shared table is read in
					// the hot loop, but loop-spawned workers cannot be
					// ordered with main's initialization, so every
					// access stays instrumented in every configuration.
					var sample = gauss[s % 64] + s % 7;
					acc = acc + sample - 100;
					results[task] = acc;
					p = p + 1;
				}
			}

			func main() {
				var tasks = input(0);
				var paths = input(1);
				var i = 0;
				while (i < 64) {
					gauss[i] = (i * i * 3) % 199;
					i = i + 1;
				}
				i = 0;
				while (i < tasks) {
					seeds[i] = input(2 + i);
					i = i + 1;
				}
				var t = 0;
				var k = 0;
				while (k < tasks) {
					t = spawn simulate(k, paths);
					join(t);
					k = k + 1;
				}
				var sum = 0;
				k = 0;
				while (k < tasks) { sum = sum + results[k]; k = k + 1; }
				print(sum);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 61)
			in := []int64{4, 120 + r.intn(80)}
			for i := 0; i < 4; i++ {
				in = append(in, 1+r.intn(1<<30))
			}
			return in
		},
	})

	register(&Workload{
		Name: "batik",
		Kind: Race,
		Notes: "SVG rasterizer: mostly thread-local rendering (hybrid already elides), " +
			"small lock-guarded progress state (paper: 1.2x over hybrid)",
		Source: `
			global config[16];
			global progress = 0;
			global plock = 0;
			global errors = 0;

			func rasterize(canvas, shapes, size) {
				var s = 0;
				while (s < shapes) {
					var kind = (s * 7 + size) % 3;
					if (kind > 2) {
						// Corrupt shape record: never seen in profiling.
						errors = errors + 1;
					}
					var i = 0;
					while (i < size) {
						canvas[i] = canvas[i] + (kind + 1) * (i % 9) + config[i % 16];
						i = i + 1;
					}
					s = s + 1;
				}
				lock(&plock);
				progress = progress + shapes;
				unlock(&plock);
			}

			func main() {
				var i = 0;
				while (i < 16) { config[i] = input(2 + i % 4); i = i + 1; }
				var shapes = input(0);
				var size = input(1);
				var c1 = alloc(size);
				var c2 = alloc(size);
				var t1 = spawn rasterize(c1, shapes, size);
				var t2 = spawn rasterize(c2, shapes, size);
				join(t1);
				join(t2);
				print(progress);
				print(c1[0] + c2[size - 1]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 71)
			return []int64{6 + r.intn(4), 96 + r.intn(64), r.intn(9), r.intn(9), r.intn(9), r.intn(9)}
		},
	})

	register(&Workload{
		Name: "xalan",
		Kind: Race,
		Notes: "XSLT transform: nearly all work on a striped-lock shared table that " +
			"neither sound nor predicated analysis can prune (paper: 1.0x)",
		Source: `
			global table[64];
			global stripes[4];

			func transform(base, ndocs, len) {
				var d = 0;
				while (d < ndocs) {
					var i = 0;
					while (i < len) {
						var h = (input(base + d) + i * 131) % 64;
						lock(stripes + (h % 4));
						table[h] = table[h] + i % 7 + 1;
						unlock(stripes + (h % 4));
						i = i + 1;
					}
					d = d + 1;
				}
			}

			func main() {
				var ndocs = input(0);
				var len = input(1);
				var t1 = spawn transform(2, ndocs, len);
				var t2 = spawn transform(2 + ndocs, ndocs, len);
				join(t1);
				join(t2);
				var sum = 0;
				var i = 0;
				while (i < 64) { sum = sum + table[i]; i = i + 1; }
				print(sum);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 83)
			in := []int64{4, 60 + r.intn(30)}
			for i := 0; i < 8; i++ {
				in = append(in, r.intn(1<<20))
			}
			return in
		},
	})

	register(&Workload{
		Name: "luindex",
		Kind: Race,
		Notes: "document indexer: the worker is spawned through a helper, so only the " +
			"likely-singleton-thread invariant proves it unique (paper: 3.6x over hybrid)",
		Source: `
			global index[64];
			global ilock = 0;
			global docsDone = 0;

			func indexDocs(base, ndocs, words) {
				var d = 0;
				while (d < ndocs) {
					var w = 0;
					while (w < words) {
						var h = (input(base + d) * 31 + w * 7) % 64;
						lock(&ilock);
						index[h] = index[h] + 1;
						unlock(&ilock);
						w = w + 1;
					}
					lock(&ilock);
					docsDone = docsDone + 1;
					unlock(&ilock);
					d = d + 1;
				}
				report();
			}

			func startIndexer(base, ndocs, words) {
				// Spawned inside a helper: the sound analysis must assume
				// this site can run many times, making the worker race
				// with itself; the singleton-thread invariant fixes it.
				var t = spawn indexDocs(base, ndocs, words);
				return t;
			}

			func report() {
				var sum = 0;
				var i = 0;
				while (i < 64) { sum = sum + index[i]; i = i + 1; }
				print(sum);
			}

			func main() {
				var ndocs = input(0);
				var words = input(1);
				var t = startIndexer(2, ndocs, words);
				// Main prepares the next batch (thread-local) meanwhile.
				var staged = alloc(ndocs);
				var d = 0;
				while (d < ndocs) {
					staged[d] = input(2 + ndocs + d) * 31;
					d = d + 1;
				}
				join(t);
				print(staged[0] + docsDone);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 97)
			in := []int64{4, 50 + r.intn(30)}
			for i := 0; i < 6; i++ {
				in = append(in, r.intn(1<<16))
			}
			return in
		},
	})

	// ----- The five statically provably race-free JavaGrande models -----

	register(&Workload{
		Name:     "sor",
		Kind:     Race,
		RaceFree: true,
		Notes:    "successive over-relaxation, one statically-owned grid per thread (provably race-free)",
		Source: `
			global gridA[48];
			global gridB[48];

			func relaxA(sweeps) {
				var s = 0;
				while (s < sweeps) {
					var i = 1;
					while (i < 47) {
						gridA[i] = (gridA[i - 1] + gridA[i + 1]) / 2 + gridA[i] % 3;
						i = i + 1;
					}
					s = s + 1;
				}
			}
			func relaxB(sweeps) {
				var s = 0;
				while (s < sweeps) {
					var i = 1;
					while (i < 47) {
						gridB[i] = (gridB[i - 1] + gridB[i + 1]) / 2 + gridB[i] % 3;
						i = i + 1;
					}
					s = s + 1;
				}
			}
			func main() {
				var sweeps = input(0);
				var i = 0;
				while (i < 48) {
					gridA[i] = input(1) + i * 3;
					gridB[i] = input(1) + i * 5;
					i = i + 1;
				}
				var t1 = spawn relaxA(sweeps);
				var t2 = spawn relaxB(sweeps);
				join(t1);
				join(t2);
				print(gridA[24] + gridB[24]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 101)
			return []int64{10 + r.intn(6), r.intn(100)}
		},
	})

	register(&Workload{
		Name:     "sparse",
		Kind:     Race,
		RaceFree: true,
		Notes:    "sparse matrix-vector product into per-thread output arrays (provably race-free)",
		Source: `
			global vals[64];
			global cols[64];
			global outA[16];
			global outB[16];

			func spmvA(reps) {
				var r = 0;
				while (r < reps) {
					var i = 0;
					while (i < 16) {
						var acc = 0;
						var k = 0;
						while (k < 4) {
							var idx = (i * 4 + k) % 64;
							acc = acc + vals[idx] * (cols[idx] % 7);
							k = k + 1;
						}
						outA[i] = acc;
						i = i + 1;
					}
					r = r + 1;
				}
			}
			func spmvB(reps) {
				var r = 0;
				while (r < reps) {
					var i = 0;
					while (i < 16) {
						var acc = 0;
						var k = 0;
						while (k < 4) {
							var idx = (i * 4 + k + 32) % 64;
							acc = acc + vals[idx] * (cols[idx] % 7);
							k = k + 1;
						}
						outB[i] = acc;
						i = i + 1;
					}
					r = r + 1;
				}
			}
			func main() {
				var i = 0;
				while (i < 64) {
					vals[i] = (i * 97 + input(1)) % 50;
					cols[i] = (i * 13) % 64;
					i = i + 1;
				}
				var reps = input(0);
				var t1 = spawn spmvA(reps);
				var t2 = spawn spmvB(reps);
				join(t1);
				join(t2);
				print(outA[0] + outB[15]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 103)
			return []int64{8 + r.intn(6), r.intn(1000)}
		},
	})

	register(&Workload{
		Name:     "series",
		Kind:     Race,
		RaceFree: true,
		Notes:    "Fourier coefficient computation into per-thread arrays (provably race-free)",
		Source: `
			global coefA[40];
			global coefB[40];

			func seriesA(scale) {
				var k = 0;
				while (k < 40) {
					coefA[k] = 0;
					var j = 1;
					while (j <= 24) {
						coefA[k] = coefA[k] + (scale * k) / j - (k * j) % 5;
						j = j + 1;
					}
					k = k + 1;
				}
			}
			func seriesB(scale) {
				var k = 0;
				while (k < 40) {
					coefB[k] = 0;
					var j = 1;
					while (j <= 24) {
						coefB[k] = coefB[k] + (scale * k) / j + (k + j) % 7;
						j = j + 1;
					}
					k = k + 1;
				}
			}
			func main() {
				var t1 = spawn seriesA(input(0));
				var t2 = spawn seriesB(input(0) + 1);
				join(t1);
				join(t2);
				print(coefA[39] + coefB[0]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 107)
			return []int64{1 + r.intn(50)}
		},
	})

	register(&Workload{
		Name:     "crypt",
		Kind:     Race,
		RaceFree: true,
		Notes:    "IDEA-style encrypt/decrypt of per-thread buffers (provably race-free)",
		Source: `
			global bufA[48];
			global bufB[48];

			func cryptA(key, rounds) {
				var r = 0;
				while (r < rounds) {
					var i = 0;
					while (i < 48) {
						var v = bufA[i];
						v = ((v ^ key) << 1) | ((v >> 9) & 511);
						v = (v + key * 3) % 65536;
						bufA[i] = v;
						i = i + 1;
					}
					r = r + 1;
				}
			}
			func cryptB(key, rounds) {
				var r = 0;
				while (r < rounds) {
					var i = 0;
					while (i < 48) {
						var v = bufB[i];
						v = ((v ^ key) << 1) | ((v >> 9) & 511);
						v = (v + key * 5) % 65536;
						bufB[i] = v;
						i = i + 1;
					}
					r = r + 1;
				}
			}
			func main() {
				var key = input(1);
				var i = 0;
				while (i < 48) {
					bufA[i] = input(2) + i;
					bufB[i] = input(2) + i * 2;
					i = i + 1;
				}
				var t1 = spawn cryptA(key, input(0));
				var t2 = spawn cryptB(key + 1, input(0));
				join(t1);
				join(t2);
				print(bufA[0] + bufB[47]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 109)
			return []int64{8 + r.intn(4), r.intn(4096), r.intn(256)}
		},
	})

	register(&Workload{
		Name:     "lufact",
		Kind:     Race,
		RaceFree: true,
		Notes:    "LU factorization of per-thread matrices (provably race-free)",
		Source: `
			global matA[64];
			global matB[64];

			func luA(n) {
				var k = 0;
				while (k < n - 1) {
					var i = k + 1;
					while (i < n) {
						var pivot = matA[k * n + k];
						if (pivot == 0) { pivot = 1; }
						var f = matA[i * n + k] / pivot;
						var j = k;
						while (j < n) {
							matA[i * n + j] = matA[i * n + j] - f * matA[k * n + j];
							j = j + 1;
						}
						i = i + 1;
					}
					k = k + 1;
				}
			}
			func luB(n) {
				var k = 0;
				while (k < n - 1) {
					var i = k + 1;
					while (i < n) {
						var pivot = matB[k * n + k];
						if (pivot == 0) { pivot = 1; }
						var f = matB[i * n + k] / pivot;
						var j = k;
						while (j < n) {
							matB[i * n + j] = matB[i * n + j] - f * matB[k * n + j];
							j = j + 1;
						}
						i = i + 1;
					}
					k = k + 1;
				}
			}
			func main() {
				var n = input(0);
				var i = 0;
				while (i < n * n) {
					matA[i] = (i * 37 + input(1)) % 19 + 1;
					matB[i] = (i * 41 + input(1)) % 23 + 1;
					i = i + 1;
				}
				var t1 = spawn luA(n);
				var t2 = spawn luB(n);
				join(t1);
				join(t2);
				print(matA[0] + matB[n * n - 1]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 113)
			return []int64{7 + r.intn(2), r.intn(512)}
		},
	})
}
