package workloads

// OptSlice suite: models of the seven C applications of §6.1.2.
// Structural notes:
//
//   - zlib: a compression kernel where almost all dynamic work
//     (histogram maintenance) is irrelevant to the checksum criterion;
//     only a never-taken corruption-recovery path makes the sound
//     analysis believe the two flows mix (LUC separates them) — the
//     paper's largest speedup (81.2x).
//   - perl: an opcode-dispatch interpreter whose register file couples
//     every op; even the predicated slice stays large (1.4x).
//   - nginx: an I/O-style server loop where the body-copy dominates
//     execution but is outside every slice; absolute overheads are
//     small for both analyses (1.2x).
//   - vim: command dispatch over many commands sharing utility
//     helpers; context-insensitive slicing merges everything, the
//     call-context invariant unlocks context-sensitive slicing (9.9x).
//   - sphinx: a pipeline of many short calls, making the call-context
//     checks comparatively expensive (the paper's 127% check
//     overhead), with rare paths for LUC.
//   - go: input-dependent exploration over many pattern evaluators —
//     the workload that needs the most profiling to converge (Fig. 7).
//   - redis: command-table dispatch where the profiled command mix
//     exercises few handlers, and only writes affect the keyspace
//     checksum criterion (13.1x).

func init() {
	register(&Workload{
		Name: "zlib",
		Kind: Slice,
		Notes: "compression kernel; checksum slice is tiny once the corruption-" +
			"recovery path is known unreachable",
		Source: `
			global hist[32];
			global streamA[16];
			global streamB[16];
			global out = 0;
			global checksum = 0;
			global corrupt = 0;

			func updateStats(sym) {
				hist[sym % 32] = hist[sym % 32] + 1;
				var spread = 0;
				var i = 0;
				while (i < 32) {
					spread = spread + hist[i] * (i % 5);
					i = i + 1;
				}
				return spread;
			}

			func emit(sym) {
				checksum = (checksum * 131 + sym) % 1000003;
				var p = out;
				p[sym % 16] = checksum % 251;
			}

			func recover(spread) {
				// Corrupt stream recovery: folds the statistics state
				// into the output stream. Never runs in practice, but a
				// sound slicer must assume it might.
				checksum = checksum + spread;
			}

			func main() {
				out = &streamA;
				var n = ninputs();
				var i = 1;
				while (i < n) {
					var sym = input(i);
					var spread = updateStats(sym);
					if (corrupt) {
						// Recovery switches to the spill stream.
						out = &streamB;
						recover(spread);
					}
					emit(sym);
					i = i + 1;
				}
				var q = out;
				// Report the spill-stream usage alongside the checksum:
				// the direct streamB reads alias the out-stream writes
				// only under the imprecise (sound) points-to analysis.
				print(checksum + q[0] + streamB[3]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 211)
			in := []int64{0}
			for i := 0; i < 40; i++ {
				in = append(in, r.intn(256))
			}
			return in
		},
	})

	register(&Workload{
		Name: "perl",
		Kind: Slice,
		Notes: "diffmail-style interpreter: a shared register file couples every " +
			"opcode, so even the predicated slice stays large",
		Source: `
			global regs[8];
			global optab[10];
			global opcount[8];
			global chk[16];
			global profmode = 0;

			func opLoad(a, b) { regs[a % 8] = b; return 0; }
			func opAdd(a, b) { regs[a % 8] = regs[a % 8] + regs[b % 8]; return 0; }
			func opMul(a, b) { regs[a % 8] = regs[a % 8] * regs[b % 8] % 65537; return 0; }
			func opXor(a, b) { regs[a % 8] = regs[a % 8] ^ regs[b % 8]; return 0; }
			func opShift(a, b) { regs[a % 8] = regs[a % 8] << (b % 4); return 0; }
			func opNeg(a, b) { regs[a % 8] = 0 - regs[a % 8]; return 0; }

			func opChk(a, b) {
				// Stream checksum: heavy, but touches only its own state.
				var c = 0;
				var i = 0;
				while (i < 16) {
					chk[i] = chk[i] + (a * 31 + b * i) % 253;
					c = c + chk[i];
					i = i + 1;
				}
				return c % 1000;
			}
			func fmtNum(x) { return x % 10; }
			func fmtHex(x) { return x % 16; }

			func main() {
				optab[0] = opLoad;
				optab[1] = opAdd;
				optab[2] = opMul;
				optab[3] = opXor;
				optab[4] = opShift;
				optab[5] = opNeg;
				optab[6] = opChk;
				optab[8] = fmtNum;
				optab[9] = fmtHex;
				var n = ninputs();
				var pc = 0;
				while (pc + 2 < n) {
					var opcode = input(pc) % 6;
					// Interpreter bookkeeping: per-opcode statistics and
					// a dispatch-prediction heuristic.
					opcount[opcode] = opcount[opcode] + 1;
					var heur = opcount[opcode] * 3 + opcount[(opcode + 1) % 6];
					heur = heur + opcount[(opcode + 2) % 6] * 5;
					var h = optab[opcode];
					h(input(pc + 1), input(pc + 2));
					opChk(input(pc + 1), opcode);
					if (profmode) {
						// --profile runs fold the heuristic into the
						// script state; never used by diffmail.
						regs[7] = regs[7] + heur;
					}
					pc = pc + 3;
				}
				// Result formatting dispatches through the same handler
				// table: a points-to analysis that cannot separate the
				// table slots must assume any handler (including the
				// heavy opChk) computes the printed digit; the likely
				// callee-set invariant restricts it to the formatters.
				var f = optab[8 + regs[0] % 2];
				var digit = f(regs[0]);
				print(regs[0] + regs[1] + digit);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 223)
			var in []int64
			for i := 0; i < 80; i++ {
				// The diffmail script uses a fixed op mix (0..3).
				in = append(in, r.intn(4), r.intn(8), r.intn(64))
			}
			return in
		},
	})

	register(&Workload{
		Name: "nginx",
		Kind: Slice,
		Notes: "server loop dominated by body copying that no slice contains; " +
			"low absolute overhead for every analysis",
		Source: `
			global served = 0;
			global bytes = 0;
			global errors404 = 0;
			global tracemode = 0;

			func copyBody(dst, len) {
				var i = 0;
				while (i < len) {
					dst[i] = (i * 7 + len) % 251;
					i = i + 1;
				}
				return len;
			}

			func parseHeaders(req) {
				var h = 0;
				var i = 0;
				while (i < 3) {
					h = h + (req >> i) % 3;
					i = i + 1;
				}
				return h;
			}

			func status(code) {
				if (code == 404) {
					errors404 = errors404 + 1;
					return 4;
				}
				return 2;
			}

			func handle(req, len) {
				var hdr = parseHeaders(req);
				var buf = alloc(len);
				var n = copyBody(buf, len);
				bytes = bytes + n;
				var code = 200;
				if (req % 97 == 13) { code = 404; }
				var class = status(code);
				served = served + 1;
				if (tracemode) {
					// Request tracing tags the status counter with the
					// parsed header fingerprint; disabled in production.
					served = served + hdr % 2;
				}
				return class;
			}

			func main() {
				var n = ninputs();
				var i = 1;
				while (i < n) {
					handle(input(i), 40 + input(i) % 40);
					i = i + 1;
				}
				print(served);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 227)
			in := []int64{0}
			for i := 0; i < 10; i++ {
				v := r.intn(1000)
				if v%97 == 13 {
					v++ // profiled traffic has no 404s: keep that path LUC
				}
				in = append(in, v)
			}
			return in
		},
	})

	register(&Workload{
		Name: "vim",
		Kind: Slice,
		Notes: "editor command dispatch: many commands share utility helpers; " +
			"context-sensitivity (unlocked by the call-context invariant) separates them",
		Source: `
			global buffer[64];
			global altbuf[64];
			global curbuf = 0;
			global screen[64];
			global cursor = 0;
			global yank = 0;
			global undo = 0;
			global forceredraw = 0;
			global cmdtab[8];

			func clampIdx(i) { return (i % 64 + 64) % 64; }
			func readCell(i) { var p = curbuf; return p[clampIdx(i)]; }
			func writeCell(i, v) { var p = curbuf; p[clampIdx(i)] = v; return 0; }

			func cmdMove(arg) { cursor = clampIdx(cursor + arg); return 0; }
			func cmdInsert(arg) { writeCell(cursor, arg); cursor = clampIdx(cursor + 1); return 0; }
			func cmdDelete(arg) { yank = readCell(cursor); writeCell(cursor, 0); return 0; }
			func cmdYank(arg) { yank = readCell(cursor); return 0; }
			func cmdPaste(arg) { writeCell(cursor, yank); return 0; }
			func cmdUndo(arg) { undo = undo + 1; writeCell(cursor, readCell(cursor) - arg); return 0; }
			func cmdMacro(arg) {
				var k = 0;
				while (k < arg % 4) {
					cmdInsert(arg + k);
					cmdMove(1);
					k = k + 1;
				}
				return 0;
			}

			func main() {
				curbuf = &buffer;
				cmdtab[0] = cmdMove;
				cmdtab[1] = cmdInsert;
				cmdtab[2] = cmdDelete;
				cmdtab[3] = cmdYank;
				cmdtab[4] = cmdPaste;
				cmdtab[5] = cmdUndo;
				cmdtab[6] = cmdMacro;
				var n = ninputs();
				var i = 1;
				while (i + 1 < n) {
					var c = cmdtab[input(i) % 7];
					c(input(i + 1));
					// Redraw the viewport after every command, with a
					// syntax-highlighting pass per row.
					var row = 0;
					var damage = 0;
					while (row < 32) {
						var cell = readCell(cursor + row);
						var hl = 0;
						var k = 0;
						while (k < 4) {
							hl = hl + (cell >> k) % 7;
							k = k + 1;
						}
						screen[row % 64] = cell * 2 + hl;
						damage = damage + screen[row % 64];
						row = row + 1;
					}
					if (forceredraw) {
						// Full-redraw mode renders into the alternate
						// buffer and stamps damage marks; never enabled
						// in batch mode.
						curbuf = &altbuf;
						writeCell(cursor, damage);
					}
					i = i + 2;
				}
				print(cursor + buffer[0] + altbuf[0]);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 229)
			in := []int64{0}
			for i := 0; i < 70; i++ {
				// vimgolf solutions: movement and insertion dominate.
				in = append(in, r.intn(2), r.intn(50))
			}
			return in
		},
	})

	register(&Workload{
		Name: "sphinx",
		Kind: Slice,
		Notes: "speech pipeline of many short calls: call-context checks are " +
			"comparatively expensive (paper: 127% check overhead)",
		Source: `
			global model[32];
			global hist[16];
			global caltab[24];
			global debugdump = 0;
			global rare = 0;

			func dot(a, b) { return (a * b) % 1009; }
			func feat1(x) { return dot(x, 3) + 1; }
			func feat2(x) { return dot(x, 7) + 2; }
			func feat3(x) { return dot(x, 11) + 3; }

			func refine(x) {
				// Deep spectral refinement: used only by calibration.
				var r = 0;
				var i = 0;
				while (i < 24) {
					caltab[i] = caltab[i] + (x * i) % 41;
					r = r + caltab[i];
					i = i + 1;
				}
				return r % 509;
			}

			func smooth(x, deep) {
				// Shared smoothing kernel: the scoring path calls it
				// shallow (deep = 0); calibration calls it deep. Only
				// the call-context invariant can tell the clones apart —
				// every block here is visited, so LUC cannot help.
				var r = (x * 5) % 1009;
				if (deep) {
					r = refine(x);
				}
				return r;
			}

			func calibrate(seed) {
				var i = 0;
				var acc = 0;
				while (i < 8) {
					acc = acc + smooth(seed + i, 1);
					i = i + 1;
				}
				return acc;
			}

			func score(f, frame) {
				var s = dot(f, model[frame % 32]) + smooth(f, 0);
				if (s == 12345) {
					// A phoneme class absent from the corpus.
					rare = rare + 1;
					s = 0;
				}
				return s;
			}
			func processFrame(x, frame) {
				var f = feat1(x) + feat2(x) + feat3(x);
				return score(f, frame);
			}

			func main() {
				var i = 0;
				while (i < 32) {
					model[i] = (i * 53 + input(0)) % 511;
					i = i + 1;
				}
				// Microphone calibration pass (irrelevant to the score).
				var cal = calibrate(input(0));
				if (cal < 0) { print(cal); }
				var n = ninputs();
				var best = 0;
				var frame = 1;
				while (frame < n) {
					var s = processFrame(input(frame), frame);
					// Maintain the per-frame likelihood histogram.
					var b = 0;
					while (b < 32) {
						hist[b % 16] = hist[b % 16] + dot(s + b, b + 1) % 9;
						b = b + 1;
					}
					if (debugdump) {
						// Acoustic-debug builds fold the histogram into
						// the score stream; disabled in release.
						s = s + hist[s % 16];
					}
					if (s > best) { best = s; }
					frame = frame + 1;
				}
				print(best);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 233)
			in := []int64{r.intn(100)}
			for i := 0; i < 24; i++ {
				in = append(in, r.intn(10000))
			}
			return in
		},
	})

	register(&Workload{
		Name: "go",
		Kind: Slice,
		Notes: "move predictor exploring input-dependent pattern evaluators: " +
			"needs far more profiling before invariants converge (Fig. 7)",
		Source: `
			global board[32];
			global patstats[16];
			global reseed = 0;
			global pattab[8];

			func patEdge(p) { return board[p % 32] * 3 + 1; }
			func patCorner(p) { return board[p % 32] * 5 - 2; }
			func patLadder(p) { return board[(p + 7) % 32] + board[p % 32]; }
			func patEye(p) { return board[p % 32] ^ 85; }
			func patAtari(p) { return 0 - board[p % 32]; }
			func patKo(p) { return board[(p + 13) % 32] * board[p % 32] % 97; }
			func patWall(p) { return board[p % 32] << 2; }
			func patCut(p) { return board[p % 32] % 13; }

			func evalMove(pos, kind) {
				var h = pattab[kind % 8];
				return h(pos);
			}

			func updateStats(kind, s) {
				var i = 0;
				while (i < 48) {
					patstats[i % 16] = patstats[i % 16] + (s + kind * i) % 5;
					i = i + 1;
				}
				return patstats[kind % 16];
			}

			func main() {
				pattab[0] = patEdge;
				pattab[1] = patCorner;
				pattab[2] = patLadder;
				pattab[3] = patEye;
				pattab[4] = patAtari;
				pattab[5] = patKo;
				pattab[6] = patWall;
				pattab[7] = patCut;
				var i = 0;
				while (i < 32) {
					board[i] = (i * 29 + input(0)) % 181;
					i = i + 1;
				}
				var n = ninputs();
				var best = 0;
				var bestPos = 0;
				var m = 1;
				while (m + 1 < n) {
					var s = evalMove(input(m), input(m + 1));
					var st = updateStats(input(m + 1), s);
					if (reseed) {
						// Time-limited searches occasionally reseed the
						// evaluation with accumulated statistics.
						s = s + st;
					}
					if (s > best) {
						best = s;
						bestPos = input(m);
					}
					m = m + 2;
				}
				print(bestPos + best);
			}
		`,
		GenInput: func(run int) []int64 {
			// Each game archive position exercises a *run-dependent*
			// subset of patterns: invariants converge slowly.
			r := newRng(uint64(run) + 239)
			in := []int64{r.intn(500)}
			a := r.intn(8)
			b := r.intn(8)
			for i := 0; i < 10; i++ {
				kind := a
				if i%2 == 1 {
					kind = b
				}
				in = append(in, r.intn(32), kind)
			}
			return in
		},
	})

	register(&Workload{
		Name: "redis",
		Kind: Slice,
		Notes: "command-table dispatch: reads dominate traffic but only writes " +
			"reach the keyspace-checksum criterion (paper: 13.1x)",
		Source: `
			global store[64];
			global cmdtab[8];
			global hitrate = 0;
			global expired = 0;
			global rewriting = 0;

			func cmdGet(k, v) {
				var x = store[k % 64];
				// Access statistics: scan the neighbourhood to estimate
				// key locality (hot read-path bookkeeping).
				var loc = 0;
				var i = 0;
				while (i < 24) {
					loc = loc + (store[(k + i) % 64] != 0);
					i = i + 1;
				}
				hitrate = hitrate + loc;
				return x;
			}
			func cmdSet(k, v) { store[k % 64] = v; return 1; }
			func cmdIncr(k, v) { store[k % 64] = store[k % 64] + v; return 1; }
			func cmdDel(k, v) { store[k % 64] = 0; return 1; }
			func cmdExpire(k, v) {
				// Expiry sweep: absent from the benchmark traffic.
				expired = expired + 1;
				store[k % 64] = 0;
				return 1;
			}

			func main() {
				cmdtab[0] = cmdGet;
				cmdtab[1] = cmdGet;
				cmdtab[2] = cmdGet;
				cmdtab[3] = cmdSet;
				cmdtab[4] = cmdIncr;
				cmdtab[5] = cmdExpire;
				var n = ninputs();
				var i = 0;
				while (i + 2 < n) {
					var h = cmdtab[input(i) % 6];
					h(input(i + 1), input(i + 2));
					if (rewriting) {
						// AOF rewrite records access statistics in the
						// keyspace; never active during redis-benchmark.
						store[63] = store[63] + hitrate;
					}
					i = i + 3;
				}
				var sum = 0;
				var k = 0;
				while (k < 64) { sum = sum + store[k]; k = k + 1; }
				print(sum);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 241)
			var in []int64
			for i := 0; i < 40; i++ {
				// redis-benchmark mix: mostly GETs, some SET/INCR, no EXPIRE.
				op := r.intn(5)
				in = append(in, op, r.intn(64), r.intn(100))
			}
			return in
		},
	})
}
