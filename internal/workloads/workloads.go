// Package workloads provides the benchmark suite of this
// reproduction: MiniLang programs modeling the paper's evaluation
// workloads, plus deterministic input generators.
//
// The paper evaluates OptFT on the multithreaded Dacapo and JavaGrande
// benchmarks and OptSlice on seven C desktop/server applications
// (§6.1). Neither the JVM suites nor the C programs can run on this
// substrate, so each is replaced by a MiniLang model that reproduces
// the structural property the paper's narrative attributes to it —
// e.g. montecarlo/sunflow are fork-join/barrier-parallel (defeating
// lockset pruning), sor/series/crypt/lufact/sparse are provably
// race-free, perl is an opcode-dispatch interpreter whose script state
// static analysis cannot separate, vim and nginx need context-
// sensitive slicing to get precise, go explores an input-dependent
// state space that requires much more profiling. Absolute numbers are
// not comparable to the paper's testbed; the relative shapes are what
// the harness reproduces.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"oha/internal/ir"
	"oha/internal/lang"
)

// Kind classifies a workload by the client analysis that evaluates it.
type Kind uint8

// Workload kinds.
const (
	Race  Kind = iota // OptFT suite (Dacapo/JavaGrande analogues)
	Slice             // OptSlice suite (C application analogues)
	Null              // OptNull suite (pointer-discipline models)
)

// Workload is one benchmark program.
type Workload struct {
	Name   string
	Kind   Kind
	Source string
	// GenInput produces the deterministic input vector for profiling/
	// testing run number `run`. Profiling sets and testing sets use
	// disjoint run-number ranges.
	GenInput func(run int) []int64
	// RaceFree records whether the model is expected to be provably
	// race-free by the sound static analysis (the five benchmarks
	// right of the red line in Figure 5).
	RaceFree bool
	// Notes describes which paper behaviour the model reproduces.
	Notes string

	compileOnce sync.Once
	prog        *ir.Program
}

// Prog returns the compiled program (cached; safe for concurrent use
// by the parallel evaluation pipeline).
func (w *Workload) Prog() *ir.Program {
	w.compileOnce.Do(func() {
		p, err := lang.Compile(w.Source)
		if err != nil {
			panic(fmt.Sprintf("workload %s: %v", w.Name, err))
		}
		w.prog = p
	})
	return w.prog
}

// rng is a splitmix64 helper for input generation.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed*0x9e3779b97f4a7c15 + 1} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	if _, dup := registry[w.Name]; dup {
		panic("duplicate workload " + w.Name)
	}
	registry[w.Name] = w
	return w
}

// ByName returns a workload or nil.
func ByName(name string) *Workload { return registry[name] }

// All returns every workload, sorted by name.
func All() []*Workload {
	var out []*Workload
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Races returns the OptFT suite in the paper's Figure 5 order.
func Races() []*Workload {
	names := []string{
		"lusearch", "pmd", "raytracer", "moldyn", "sunflow", "montecarlo",
		"batik", "xalan", "luindex",
		// Right of the red line: statically provably race-free.
		"sor", "sparse", "series", "crypt", "lufact",
	}
	return byNames(names)
}

// Slices returns the OptSlice suite in the paper's Figure 6 order.
func Slices() []*Workload {
	return byNames([]string{"zlib", "nginx", "go", "sphinx", "vim", "perl", "redis"})
}

// Nulls returns the OptNull suite: pointer-discipline models for the
// optimistic null/misuse checker.
func Nulls() []*Workload {
	return byNames([]string{"null-mono", "null-flaky"})
}

func byNames(names []string) []*Workload {
	out := make([]*Workload, len(names))
	for i, n := range names {
		w := registry[n]
		if w == nil {
			panic("unknown workload " + n)
		}
		out[i] = w
	}
	return out
}
