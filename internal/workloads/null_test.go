package workloads

import (
	"testing"

	"oha/internal/core"
)

func profileNull(t *testing.T, w *Workload, runs int) *core.ProfileResult {
	t.Helper()
	pr, err := core.Profile(w.Prog(), func(run int) core.Execution {
		return core.Execution{Inputs: w.GenInput(run), Seed: uint64(run + 1)}
	}, runs)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestNullMonoDischarge is the headline speedup claim transplanted to
// the null client: on the monomorphic workload the optimistic static
// pass discharges at least half of the deref checks the always-check
// baseline executes, and the speculative run completes without
// rollback while executing strictly fewer residual checks.
func TestNullMonoDischarge(t *testing.T) {
	w := ByName("null-mono")
	pr := profileNull(t, w, 8)
	det, err := core.NewOptNull(w.Prog(), pr.DB)
	if err != nil {
		t.Fatal(err)
	}
	if r := det.DischargeRatio(); r < 0.5 {
		t.Fatalf("discharge ratio = %.2f (%d of %d deref sites), want >= 0.5",
			r, det.ElidedChecks(), det.Pred.DerefSites)
	}

	e := core.Execution{Inputs: w.GenInput(40), Seed: 7}
	base, err := core.RunNullAlways(w.Prog(), e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := det.Run(e, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack {
		t.Fatalf("monomorphic workload rolled back: %s", rep.Violation)
	}
	if !core.SameNullVerdicts(base, rep) {
		t.Fatalf("verdicts diverged: %v vs %v", rep.NilSites, base.NilSites)
	}
	if base.CheckedDerefs == 0 || rep.CheckedDerefs >= base.CheckedDerefs {
		t.Fatalf("residual checks %d vs baseline %d: speculation saved nothing",
			rep.CheckedDerefs, base.CheckedDerefs)
	}
}

// TestNullFlakyRefutes: a testing-range input drives the flaky
// workload into a nil load at a fact site; the optimistic run rolls
// back and its sound re-execution matches the always-check baseline.
func TestNullFlakyRefutes(t *testing.T) {
	w := ByName("null-flaky")
	pr := profileNull(t, w, 16)
	det, err := core.NewOptNull(w.Prog(), pr.DB)
	if err != nil {
		t.Fatal(err)
	}
	// Find a testing-range run that actually dereferences nil.
	for run := 32; run < 64; run++ {
		e := core.Execution{Inputs: w.GenInput(run), Seed: uint64(run)}
		base, err := core.RunNullAlways(w.Prog(), e, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(base.NilSites) == 0 {
			continue
		}
		rep, err := det.Run(e, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.RolledBack || rep.Violation.Kind != core.ViolationNonNull {
			t.Fatalf("run %d: rolledback=%v violation=%s, want a non-null violation",
				run, rep.RolledBack, rep.Violation)
		}
		if !core.SameNullVerdicts(base, rep) {
			t.Fatalf("run %d: rollback verdicts %v != baseline %v", run, rep.NilSites, base.NilSites)
		}
		return
	}
	t.Fatal("no testing-range input dereferenced nil; workload is not flaky")
}
