package workloads

// OptNull suite: pointer-discipline models for the optimistic null/
// misuse checker. The paper's client recipe (§4: take a dynamic
// analysis, find its checks, predicate them on likely invariants)
// applied to null checking: every pointer load and store carries a
// dynamic nil check unless the predicated static pass proves the
// address non-null — optimistically assuming loads that never produced
// nil during profiling (the likely-non-null invariant) stay that way.
//
//   - null-mono models a monomorphic pointer discipline: global
//     cursors are installed once from allocations and then only
//     rotated among non-null values, so every profiled load is
//     non-null and the static pass discharges (nearly) every deref
//     check. The shape FastTrack's Figure-5 "right of the red line"
//     benchmarks have for races, transplanted to null checking.
//   - null-flaky models the optimistic failure mode: a rare input
//     range drops a cursor to nil and skips the repair path, refuting
//     the profiled non-null fact at runtime — the speculative run
//     rolls back to the always-check configuration and the adaptive
//     layer refines the fact away.
//
// Nil dereferences recover deterministically under null-checking
// configurations (a nil load produces 0, a nil store is dropped), so
// the flaky model is safe to run wherever a null mask is installed;
// its GenInput keeps the profiling run range (run < 32) benign so the
// likely-non-null facts always form.

func init() {
	register(&Workload{
		Name: "null-mono",
		Kind: Null,
		Notes: "monomorphic cursor rotation: every pointer load is non-null in " +
			"every run, so the predicated static pass discharges the deref checks " +
			"(the null client's analogue of provably race-free workloads)",
		Source: `
			global head = 0;
			global tail = 0;
			global acc = 0;

			func step(k) {
				var h = head;
				var t = tail;
				var v = *h;
				*t = v + k;
				acc = acc + v;
				return v;
			}

			func main() {
				head = alloc(2);
				tail = alloc(2);
				*head = input(1) + 1;
				*tail = input(2) + 1;
				var n = input(0);
				var i = 0;
				while (i < n) {
					var s = step(i);
					if (s % 2 == 0) {
						head = tail;
					} else {
						tail = head;
					}
					i = i + 1;
				}
				print(acc);
				print(*head);
				print(*tail);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 101)
			return []int64{60 + r.intn(40), r.intn(50), r.intn(50)}
		},
	})

	register(&Workload{
		Name: "null-flaky",
		Kind: Null,
		Notes: "input-guarded nil escape: profiling observes every cursor load " +
			"non-null (the nil branch is always repaired), but rare large inputs " +
			"skip the repair and refute the likely-non-null fact — the rollback/" +
			"refinement trigger for the null client",
		Source: `
			global cur = 0;
			global slab = 7;
			global sum = 0;
			global drops = 0;

			func touch(a) {
				if (a > 900) {
					cur = 0;
					drops = drops + 1;
				}
				if (a < 1000) {
					cur = &slab;
				}
				var v = *cur;
				sum = sum + v + (a % 5);
			}

			func main() {
				var n = input(0);
				var i = 0;
				while (i < n) {
					touch(input(1 + (i % 8)));
					i = i + 1;
				}
				print(sum);
				print(drops);
			}
		`,
		GenInput: func(run int) []int64 {
			r := newRng(uint64(run) + 211)
			in := []int64{40 + r.intn(40)}
			for i := 0; i < 8; i++ {
				if run < 32 {
					// Profiling range: the nil branch is exercised
					// (values above 900) but always repaired (below
					// 1000), so every load of cur stays non-null.
					in = append(in, r.intn(1000))
				} else {
					// Testing range: values at 1000 and above skip the
					// repair and load a nil cursor.
					in = append(in, r.intn(1300))
				}
			}
			return in
		},
	})
}
