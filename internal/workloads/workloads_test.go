package workloads

import (
	"testing"

	"oha/internal/core"
	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/sched"
)

func TestRegistryComplete(t *testing.T) {
	if got := len(Races()); got != 14 {
		t.Errorf("race suite = %d workloads, want 14", got)
	}
	if got := len(Slices()); got != 7 {
		t.Errorf("slice suite = %d workloads, want 7", got)
	}
	if got := len(Nulls()); got != 2 {
		t.Errorf("null suite = %d workloads, want 2", got)
	}
	if got := len(All()); got != 25 {
		t.Errorf("total workloads = %d, want 25", got)
	}
	if ByName("lusearch") == nil || ByName("zlib") == nil {
		t.Error("ByName lookup failed")
	}
	if ByName("nosuch") != nil {
		t.Error("ByName invented a workload")
	}
}

func TestAllCompileAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Prog()
			if err := prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			// Null workloads may deref nil on testing inputs; the
			// always-check mask recovers those deterministically.
			var nullMask []bool
			if w.Kind == Null {
				nullMask = make([]bool, len(prog.Instrs))
				for _, in := range prog.Instrs {
					if in.Op == ir.OpLoad || in.Op == ir.OpStore {
						nullMask[in.ID] = true
					}
				}
			}
			for run := 0; run < 3; run++ {
				in := w.GenInput(run)
				res, err := interp.Run(interp.Config{
					Prog:     prog,
					Inputs:   in,
					Choose:   sched.NewSeeded(uint64(run + 1)),
					NullMask: nullMask,
				})
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if len(res.Output) == 0 {
					t.Fatalf("run %d: no output", run)
				}
				if res.Stats.Steps < 500 {
					t.Errorf("run %d: suspiciously small workload (%d steps)", run, res.Stats.Steps)
				}
				if res.Stats.Steps > 3_000_000 {
					t.Errorf("run %d: workload too large for the harness (%d steps)", run, res.Stats.Steps)
				}
			}
		})
	}
}

func TestInputGenDeterministic(t *testing.T) {
	for _, w := range All() {
		a := w.GenInput(7)
		b := w.GenInput(7)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic input length", w.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic input", w.Name)
			}
		}
	}
}

// Every workload must be dynamically race-free: a real race would make
// OptFT's elided-lock runs permanently roll back and would put false
// blame on the methodology rather than the program.
func TestRaceWorkloadsDynamicallyRaceFree(t *testing.T) {
	for _, w := range Races() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Prog()
			for run := 0; run < 3; run++ {
				e := core.Execution{Inputs: w.GenInput(run), Seed: uint64(run + 1)}
				rep, err := core.RunFastTrack(prog, e, core.RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Races) != 0 {
					t.Fatalf("run %d: dynamic races: %v", run, rep.Details)
				}
			}
		})
	}
}

// The five benchmarks right of Figure 5's red line must be provably
// race-free by the *sound* static analysis; the other nine must not.
func TestStaticRaceFreedomMatchesPaperGrouping(t *testing.T) {
	for _, w := range Races() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			hy, err := core.NewHybridFT(w.Prog())
			if err != nil {
				t.Fatal(err)
			}
			free := hy.Static.RaceFree()
			if free != w.RaceFree {
				t.Errorf("sound race-freedom = %v, workload expects %v (%d pairs)",
					free, w.RaceFree, len(hy.Static.Pairs))
			}
		})
	}
}

// Every slicing workload must yield a non-trivial dynamic slice from
// its final print.
func TestSliceWorkloadsHaveNonTrivialSlices(t *testing.T) {
	for _, w := range Slices() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Prog()
			var criterion *ir.Instr
			for _, in := range prog.Instrs {
				if in.Op == ir.OpPrint {
					criterion = in
				}
			}
			e := core.Execution{Inputs: w.GenInput(0), Seed: 1}
			rep, err := core.RunFullGiri(prog, criterion, e, core.RunOptions{}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Slice == nil || rep.Slice.Size() < 5 {
				t.Fatalf("trivial dynamic slice: %v", rep.Slice)
			}
		})
	}
}

// Profiling must converge for every workload within a bounded number
// of runs.
func TestProfilingConverges(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			pr, err := core.Profile(w.Prog(), func(run int) core.Execution {
				return core.Execution{Inputs: w.GenInput(run), Seed: uint64(run + 1)}
			}, 64)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Runs >= 64 && w.Name != "go" {
				t.Errorf("did not converge in 64 runs (%d)", pr.Runs)
			}
			c := pr.DB.Count()
			if c.VisitedBlocks == 0 {
				t.Error("no visited blocks profiled")
			}
		})
	}
}
