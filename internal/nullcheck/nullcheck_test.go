package nullcheck

import (
	"testing"

	"oha/internal/ctxs"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/lang"
	"oha/internal/pointsto"
)

// mustCompile compiles MiniLang source or fails the test.
func mustCompile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// derefByVar maps each load/store site to the name of the variable its
// address operand reads (sites with register addresses only).
func derefSites(prog *ir.Program) map[string][]*ir.Instr {
	out := map[string][]*ir.Instr{}
	for _, in := range prog.Instrs {
		if (in.Op == ir.OpLoad || in.Op == ir.OpStore) && in.A.Kind == ir.OperVar {
			out[in.A.Var.Name] = append(out[in.A.Var.Name], in)
		}
	}
	return out
}

const branchy = `
	global buf[4];
	global ptr = 0;

	func main() {
		ptr = &buf;
		var p = ptr;
		*p = 7;
		var q = &buf;
		var x = *q;
		var r = input(0);
		if (r != 0) {
			x = x + *r;
		}
		print(x);
		return 0;
	}
`

// TestSoundSources: with no invariants and no points-to, the register
// pass discharges derefs through address-of and branch-guarded
// registers, and keeps the check on a pointer loaded from a global.
func TestSoundSources(t *testing.T) {
	prog := mustCompile(t, branchy)
	res := Analyze(prog, nil, nil)
	sites := derefSites(prog)
	for _, name := range []string{"p", "q", "r"} {
		if len(sites[name]) == 0 {
			t.Fatalf("no deref through register %q found; lowering changed?", name)
		}
	}

	for _, in := range sites["q"] {
		if !res.Discharged.Has(in.ID) {
			t.Errorf("deref through &buf register not discharged (instr %d)", in.ID)
		}
	}
	for _, in := range sites["r"] {
		if !res.Discharged.Has(in.ID) {
			t.Errorf("deref guarded by r != 0 not discharged (instr %d)", in.ID)
		}
	}
	for _, in := range sites["p"] {
		if res.Discharged.Has(in.ID) {
			t.Errorf("deref through globally-loaded pointer wrongly discharged soundly (instr %d)", in.ID)
		}
	}
	if !res.UsedFacts.IsEmpty() {
		t.Errorf("sound analysis used facts: %v", res.UsedFacts.Slice())
	}
	if res.DerefSites == 0 {
		t.Fatal("no deref sites counted")
	}
}

// TestOptimisticFacts: a likely-non-null fact on the global-pointer
// load discharges the residual deref, and the fact use is recorded.
func TestOptimisticFacts(t *testing.T) {
	prog := mustCompile(t, branchy)
	db := invariants.NewDB()
	for _, in := range prog.Instrs {
		if in.Op == ir.OpLoad {
			db.NonNullLoads.Add(in.ID)
		}
	}
	res := Analyze(prog, nil, db)
	sites := derefSites(prog)

	for _, in := range sites["p"] {
		if !res.Discharged.Has(in.ID) {
			t.Errorf("deref under non-null-load fact not discharged (instr %d)", in.ID)
		}
	}
	if res.UsedFacts.IsEmpty() {
		t.Error("no facts recorded as used")
	}
	res.UsedFacts.ForEach(func(id int) bool {
		if !db.NonNullLoads.Has(id) {
			t.Errorf("used fact %d not in the database", id)
		}
		return true
	})
}

// TestPointsToGlobalFacts: a sentinel-initialized global that is only
// ever assigned allocation results is a sound non-null load source —
// phase 2 discharges the deref with no fact.
func TestPointsToGlobalFacts(t *testing.T) {
	prog := mustCompile(t, `
		global cur = 1;
		global reset = 0;

		func main() {
			cur = alloc(4);
			var p = cur;
			*p = 9;
			reset = input(0);
			var q = reset;
			var y = q + 1;
			print(y);
			return 0;
		}
	`)
	pt, err := pointsto.Analyze(prog, ctxs.NewCI(prog), nil)
	if err != nil {
		t.Fatalf("pointsto: %v", err)
	}
	res := Analyze(prog, pt, nil)
	sites := derefSites(prog)

	for _, in := range sites["p"] {
		if !res.Discharged.Has(in.ID) {
			t.Errorf("deref through qualified global load not discharged (instr %d)", in.ID)
		}
	}
	if !res.UsedFacts.IsEmpty() {
		t.Errorf("sound phase-2 proof used facts: %v", res.UsedFacts.Slice())
	}

	// Without the points-to result the same deref stays residual.
	noPT := Analyze(prog, nil, nil)
	for _, in := range sites["p"] {
		if noPT.Discharged.Has(in.ID) {
			t.Errorf("register-only pass wrongly discharged global-load deref (instr %d)", in.ID)
		}
	}
}

// TestDisqualifiedGlobal: a zero-initialized pointer global never
// qualifies, even when every store to it is non-null — the initial 0
// is observable.
func TestDisqualifiedGlobal(t *testing.T) {
	prog := mustCompile(t, `
		global cur = 0;

		func main() {
			cur = alloc(4);
			var p = cur;
			*p = 9;
			return 0;
		}
	`)
	pt, err := pointsto.Analyze(prog, ctxs.NewCI(prog), nil)
	if err != nil {
		t.Fatalf("pointsto: %v", err)
	}
	res := Analyze(prog, pt, nil)
	for _, in := range derefSites(prog)["p"] {
		if res.Discharged.Has(in.ID) {
			t.Errorf("zero-initialized global load wrongly sound (instr %d)", in.ID)
		}
	}
}

// TestDeterminism: repeated analysis of one (program, db) pair yields
// identical results.
func TestDeterminism(t *testing.T) {
	prog := mustCompile(t, branchy)
	db := invariants.NewDB()
	for _, in := range prog.Instrs {
		if in.Op == ir.OpLoad {
			db.NonNullLoads.Add(in.ID)
		}
	}
	a := Analyze(prog, nil, db)
	b := Analyze(prog, nil, db)
	if !a.Discharged.Equal(b.Discharged) || !a.UsedFacts.Equal(b.UsedFacts) || a.DerefSites != b.DerefSites {
		t.Fatal("analysis is not deterministic")
	}
}
