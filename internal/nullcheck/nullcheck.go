// Package nullcheck implements the OptNull client's predicated static
// phase: a flow-sensitive non-nullness dataflow over the IR CFG that
// statically discharges null checks at dereference sites whose address
// is proven non-null.
//
// The optimistic ingredient is the likely-non-null-loads invariant
// (invariants.DB.NonNullLoads): a load site profiling never observed
// producing 0 is assumed to keep producing non-null values, exactly as
// the paper's predicated analyses assume likely-unreachable code stays
// unreachable. Every use of a fact is recorded, and the speculative
// run verifies precisely those fact sites at runtime — an observed nil
// load there aborts, rolls back, and refines the database.
//
// The pass is two-phase so the points-to results feed it memory facts:
//
//	phase 1  register-only dataflow (sources: allocations, global and
//	         function addresses, non-zero constants; optimistic: loads
//	         covered by NonNullLoads facts), which also proves for each
//	         store whether the stored value is non-null;
//	phase 2  global objects whose cells are initialized non-null and
//	         only ever written phase-1-proven-non-null values become
//	         sound load sources (via pointsto.AddrPtsAll), and the
//	         register pass reruns with those loads sound.
//
// The whole analysis is deterministic: results depend only on the
// program, the database, and the points-to result.
package nullcheck

import (
	"oha/internal/bitset"
	"oha/internal/interp"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/pointsto"
)

// Observer is the raw dynamic observation behind the likely-non-null-
// loads invariant: the set of load sites ever seen producing 0. Its
// per-event work is one zero test and (rarely) one bitset insert —
// exactly the shape the compiled engine's FastNull inline path
// assumes, so a tracer built on an Observer lets the engine settle
// every non-nil load without an interface call.
type Observer struct {
	zero *bitset.Set
}

// NewObserver returns an empty observer.
func NewObserver() *Observer { return &Observer{zero: &bitset.Set{}} }

// Observe records one load observation.
func (o *Observer) Observe(in *ir.Instr, val int64) {
	if val == 0 {
		o.zero.Add(in.ID)
	}
}

// ZeroLoads returns the set of load sites observed producing 0.
func (o *Observer) ZeroLoads() *bitset.Set { return o.zero }

// FastState describes the observer to the engine's inline fast path:
// non-nil loads are pure no-ops (no counter, nothing recorded), only
// v == 0 needs the full Load call.
func (o *Observer) FastState() *interp.FastState {
	return &interp.FastState{Kind: interp.FastNull}
}

// Result is the static phase's output for one (program, database)
// pair.
type Result struct {
	// Discharged holds the load/store instruction IDs whose null check
	// the static phase proved unnecessary (address non-null on every
	// path). Residual sites keep their dynamic checks.
	Discharged *bitset.Set
	// DerefSites is the total number of load/store sites in the
	// program — the denominator of the discharge ratio.
	DerefSites int
	// UsedFacts holds the NonNullLoads fact sites the proof relies on.
	// The speculative run must verify exactly these loads at runtime.
	UsedFacts *bitset.Set
}

// DischargeRatio returns the fraction of dereference sites statically
// discharged (0 when the program has none).
func (r *Result) DischargeRatio() float64 {
	if r.DerefSites == 0 {
		return 0
	}
	return float64(r.Discharged.Len()) / float64(r.DerefSites)
}

// Analyze runs the predicated non-nullness analysis. A nil db yields
// the sound variant (no likely invariants assumed, UsedFacts empty);
// a nil pt skips the memory phase (register facts only).
func Analyze(prog *ir.Program, pt *pointsto.Result, db *invariants.DB) *Result {
	res := &Result{Discharged: &bitset.Set{}, UsedFacts: &bitset.Set{}}
	for _, in := range prog.Instrs {
		if in.Op == ir.OpLoad || in.Op == ir.OpStore {
			res.DerefSites++
		}
	}

	// Phase 1: registers only. Record per-store value non-nullness for
	// the object qualification below.
	storeVal := make([]bool, len(prog.Instrs))
	phase1 := newPass(prog, db, nil)
	phase1.run(func(in *ir.Instr, addrOK, valOK bool) {
		if in.Op == ir.OpStore {
			storeVal[in.ID] = valOK
		}
	})

	soundLoads := soundLoadSites(prog, pt, storeVal)

	// Phase 2: rerun with the memory-backed sound loads; only this
	// run's discharges and fact uses count.
	final := newPass(prog, db, soundLoads)
	final.run(func(in *ir.Instr, addrOK, valOK bool) {
		if (in.Op == ir.OpLoad || in.Op == ir.OpStore) && addrOK {
			res.Discharged.Add(in.ID)
		}
	})
	res.UsedFacts = final.used
	return res
}

// soundLoadSites computes the load sites whose result is soundly
// non-null because every object the address may denote is a global
// group that (a) is initialized all-non-null and (b) is only ever
// stored phase-1-proven-non-null values.
func soundLoadSites(prog *ir.Program, pt *pointsto.Result, storeVal []bool) []bool {
	if pt == nil {
		return nil
	}
	objs := pt.Objects()
	objOK := make([]bool, len(objs))
	for id, o := range objs {
		if o.Kind != pointsto.ObjGlobal {
			continue
		}
		ok := false
		for _, g := range prog.Globals {
			if g.Group != o.Key {
				continue
			}
			ok = true
			if g.Init == 0 {
				ok = false
				break
			}
		}
		objOK[id] = ok
	}
	// Any store that may write an object with a maybe-null value
	// disqualifies it. Stores the predicated points-to excluded sit in
	// likely-unreachable code, whose execution already aborts the run.
	for _, in := range prog.Instrs {
		if in.Op != ir.OpStore || !pt.Analyzed(in) || storeVal[in.ID] {
			continue
		}
		pt.AddrPtsAll(in).ForEach(func(obj int) bool {
			if obj < len(objOK) {
				objOK[obj] = false
			}
			return true
		})
	}
	sound := make([]bool, len(prog.Instrs))
	for _, in := range prog.Instrs {
		if in.Op != ir.OpLoad || !pt.Analyzed(in) {
			continue
		}
		pts := pt.AddrPtsAll(in)
		if pts.IsEmpty() {
			continue
		}
		all := true
		pts.ForEach(func(obj int) bool {
			if obj >= len(objOK) || !objOK[obj] {
				all = false
				return false
			}
			return true
		})
		sound[in.ID] = all
	}
	return sound
}

// pass is one register dataflow run over every function.
type pass struct {
	prog       *ir.Program
	db         *invariants.DB
	soundLoads []bool
	used       *bitset.Set
}

func newPass(prog *ir.Program, db *invariants.DB, soundLoads []bool) *pass {
	return &pass{prog: prog, db: db, soundLoads: soundLoads, used: &bitset.Set{}}
}

// run solves each function to fixpoint, then replays every reachable
// block once with converged entry states, reporting each dereference's
// address (and, for stores, value) non-nullness to visit.
func (p *pass) run(visit func(in *ir.Instr, addrOK, valOK bool)) {
	for _, f := range p.prog.Funcs {
		ins := p.solve(f)
		for _, b := range f.Blocks {
			if ins[b.Index] == nil {
				continue // CFG-unreachable from entry
			}
			p.transfer(b, ins[b.Index].Clone(), visit)
		}
	}
}

// solve runs the forward must-analysis over one function's CFG:
// state = the set of register IDs proven non-null, meet = intersection
// over incoming edges (nil = unvisited = top), with branch-edge
// refinement. Parameters are unknown at entry (the pass is
// intraprocedural).
func (p *pass) solve(f *ir.Function) []*bitset.Set {
	ins := make([]*bitset.Set, len(f.Blocks))
	ins[f.Entry.Index] = &bitset.Set{}
	work := []*ir.Block{f.Entry}
	inWork := make([]bool, len(f.Blocks))
	inWork[f.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		outs := p.edgeOuts(b, ins[b.Index].Clone())
		for i, s := range b.Succs {
			var out *bitset.Set
			if i < len(outs) {
				out = outs[i]
			}
			if out == nil {
				out = &bitset.Set{}
			}
			cur := ins[s.Index]
			if cur == nil {
				ins[s.Index] = out.Clone()
			} else if !cur.IntersectWith(out) {
				continue // meet by intersection; re-enqueue only on change
			}
			if !inWork[s.Index] {
				work = append(work, s)
				inWork[s.Index] = true
			}
		}
	}
	return ins
}

// edgeOuts transfers one block and returns the per-successor-edge out
// states, refined by the terminating branch when its condition proves
// a register non-null on one edge.
func (p *pass) edgeOuts(b *ir.Block, st *bitset.Set) []*bitset.Set {
	// def tracks the most recent in-block definition per register, for
	// recognizing `br (x != 0)`-shaped conditions.
	var def map[int]*ir.Instr
	p.transferTrack(b, st, &def)
	term := b.Terminator()
	if term == nil || term.Op != ir.OpBr || len(b.Succs) != 2 {
		outs := make([]*bitset.Set, len(b.Succs))
		for i := range outs {
			outs[i] = st
		}
		return outs
	}
	trueSt, falseSt := st.Clone(), st
	if term.A.Kind == ir.OperVar {
		x := term.A.Var
		// `br x`: the true edge proves x != 0.
		trueSt.Add(x.ID)
		// `br (a != 0)` / `br (a == 0)`: the comparison's operand is
		// proven non-null on the corresponding edge.
		if d, ok := def[x.ID]; ok && d.Op == ir.OpBin {
			if v, lit := compareToZero(d); v != nil {
				switch lit {
				case ir.BinNe:
					trueSt.Add(v.ID)
				case ir.BinEq:
					falseSt.Add(v.ID)
				}
			}
		}
	}
	return []*bitset.Set{trueSt, falseSt}
}

// compareToZero recognizes `v != 0`, `0 != v`, `v == 0`, `0 == v` and
// returns the compared register and the comparison operator.
func compareToZero(in *ir.Instr) (*ir.Var, ir.BinOp) {
	if in.Bin != ir.BinNe && in.Bin != ir.BinEq {
		return nil, 0
	}
	if in.A.Kind == ir.OperVar && in.B.Kind == ir.OperConst && in.B.Const == 0 {
		return in.A.Var, in.Bin
	}
	if in.B.Kind == ir.OperVar && in.A.Kind == ir.OperConst && in.A.Const == 0 {
		return in.B.Var, in.Bin
	}
	return nil, 0
}

// transfer walks one block mutating st, reporting dereferences.
func (p *pass) transfer(b *ir.Block, st *bitset.Set, visit func(in *ir.Instr, addrOK, valOK bool)) {
	var def map[int]*ir.Instr
	p.transferVisit(b, st, &def, visit)
}

// transferTrack is transfer without a visitor, recording in-block defs.
func (p *pass) transferTrack(b *ir.Block, st *bitset.Set, def *map[int]*ir.Instr) {
	p.transferVisit(b, st, def, nil)
}

func (p *pass) transferVisit(b *ir.Block, st *bitset.Set, def *map[int]*ir.Instr, visit func(in *ir.Instr, addrOK, valOK bool)) {
	for _, in := range b.Instrs {
		if visit != nil && (in.Op == ir.OpLoad || in.Op == ir.OpStore) {
			valOK := false
			if in.Op == ir.OpStore {
				valOK = p.operandNonNull(st, in.B)
			}
			visit(in, p.operandNonNull(st, in.A), valOK)
		}
		if in.Dst == nil {
			continue
		}
		nonNull := false
		switch in.Op {
		case ir.OpAlloc:
			nonNull = true // allocation addresses are never 0
		case ir.OpCopy:
			nonNull = p.operandNonNull(st, in.A)
		case ir.OpLoad:
			if p.soundLoads != nil && in.ID < len(p.soundLoads) && p.soundLoads[in.ID] {
				nonNull = true
			} else if p.db != nil && p.db.NonNullLoads.Has(in.ID) {
				nonNull = true
				p.used.Add(in.ID)
			}
		}
		if nonNull {
			st.Add(in.Dst.ID)
		} else {
			st.Remove(in.Dst.ID)
		}
		if def != nil {
			if *def == nil {
				*def = map[int]*ir.Instr{}
			}
			(*def)[in.Dst.ID] = in
		}
	}
}

// operandNonNull reports whether an operand is proven non-null under
// st: global and function addresses always are, constants when
// non-zero, registers when the dataflow proved them.
func (p *pass) operandNonNull(st *bitset.Set, op ir.Operand) bool {
	switch op.Kind {
	case ir.OperConst:
		return op.Const != 0
	case ir.OperVar:
		return st.Has(op.Var.ID)
	case ir.OperGlobal, ir.OperFunc:
		return true
	}
	return false
}
