package fasttrack

import (
	"testing"

	"oha/internal/interp"
	"oha/internal/lang"
	"oha/internal/progen"
	"oha/internal/sched"
)

// FastTrack's correctness claim relative to its baseline: the epoch
// representation detects exactly the races the full-vector-clock
// detector (DJIT+) detects, at variable granularity.
func TestFastTrackEquivalentToDJIT(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		prog, err := lang.Compile(progen.Generate(seed, progen.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []uint64{1, 2, 3} {
			run := func(tr interp.Tracer) {
				_, err := interp.Run(interp.Config{
					Prog:      prog,
					Inputs:    []int64{5, 9, 2, 7, 1, 8, 3, 6},
					Tracer:    tr,
					Choose:    sched.NewSeeded(s),
					Quantum:   4,
					BlockMask: make([]bool, len(prog.Blocks)),
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			ft := New()
			run(ft)
			dj := NewDJIT()
			run(dj)
			fa, da := ft.RacyAddrs(), dj.RacyAddrs()
			if len(fa) != len(da) {
				t.Fatalf("seed %d/%d: racy addrs differ: ft=%v djit=%v", seed, s, fa, da)
			}
			for i := range fa {
				if fa[i] != da[i] {
					t.Fatalf("seed %d/%d: racy addrs differ: ft=%v djit=%v", seed, s, fa, da)
				}
			}
			if ft.Checks != dj.Checks {
				t.Fatalf("seed %d/%d: detectors saw different event counts", seed, s)
			}
		}
	}
}

func TestDJITDetectsSimpleRace(t *testing.T) {
	prog := lang.MustCompile(`
		global g = 0;
		func w() { g = g + 1; }
		func main() {
			var t1 = spawn w();
			var t2 = spawn w();
			join(t1); join(t2);
		}
	`)
	found := false
	for s := uint64(1); s <= 8; s++ {
		d := NewDJIT()
		if _, err := interp.Run(interp.Config{
			Prog: prog, Tracer: d, Choose: sched.NewSeeded(s), Quantum: 2,
			BlockMask: make([]bool, len(prog.Blocks)),
		}); err != nil {
			t.Fatal(err)
		}
		if d.HasRaces() {
			found = true
		}
	}
	if !found {
		t.Fatal("DJIT missed an obvious race on all seeds")
	}
}

func TestDJITNoFalseRaceWhenLocked(t *testing.T) {
	prog := lang.MustCompile(`
		global g = 0;
		global m = 0;
		func w() {
			lock(&m);
			g = g + 1;
			unlock(&m);
		}
		func main() {
			var t1 = spawn w();
			var t2 = spawn w();
			join(t1); join(t2);
		}
	`)
	for s := uint64(1); s <= 8; s++ {
		d := NewDJIT()
		if _, err := interp.Run(interp.Config{
			Prog: prog, Tracer: d, Choose: sched.NewSeeded(s), Quantum: 2,
			BlockMask: make([]bool, len(prog.Blocks)),
		}); err != nil {
			t.Fatal(err)
		}
		if d.HasRaces() {
			t.Fatalf("seed %d: false race: %v", s, d.RacyAddrs())
		}
	}
}
