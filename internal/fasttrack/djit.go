package fasttrack

import (
	"sort"

	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/vc"
)

// DJIT is a DJIT+-style happens-before race detector: semantically
// FastTrack without the epoch optimization — every variable carries a
// full read vector clock and a full write vector clock, and every
// access performs O(threads) vector-clock work.
//
// It exists as the ablation baseline for FastTrack's core claim (the
// adaptive epoch representation makes the common case O(1)): the
// benchmark suite compares the two detectors' per-access cost, and the
// tests check they flag exactly the same racy variables.
type DJIT struct {
	interp.NopTracer
	threads []*vc.VC
	locks   map[interp.Addr]*vc.VC
	vars    map[interp.Addr]*djitVar
	racy    map[interp.Addr]bool
	// Checks counts read/write metadata operations performed.
	Checks uint64
}

type djitVar struct {
	r, w *vc.VC
}

// NewDJIT returns an empty DJIT+ detector.
func NewDJIT() *DJIT {
	return &DJIT{
		locks: map[interp.Addr]*vc.VC{},
		vars:  map[interp.Addr]*djitVar{},
		racy:  map[interp.Addr]bool{},
	}
}

func (d *DJIT) clock(t vc.TID) *vc.VC {
	for int(t) >= len(d.threads) {
		d.threads = append(d.threads, nil)
	}
	if d.threads[t] == nil {
		c := vc.New()
		c.Set(t, 1)
		d.threads[t] = c
	}
	return d.threads[t]
}

func (d *DJIT) state(a interp.Addr) *djitVar {
	v := d.vars[a]
	if v == nil {
		v = &djitVar{r: vc.New(), w: vc.New()}
		d.vars[a] = v
	}
	return v
}

// Load implements the DJIT+ read rule: the full write clock must
// happen-before the reader.
func (d *DJIT) Load(t vc.TID, _ *ir.Instr, addr interp.Addr, _ int64) {
	d.Checks++
	ct := d.clock(t)
	v := d.state(addr)
	if !v.w.Leq(ct) {
		d.racy[addr] = true
	}
	v.r.Set(t, ct.Get(t))
}

// Store implements the DJIT+ write rule: both full clocks must
// happen-before the writer.
func (d *DJIT) Store(t vc.TID, _ *ir.Instr, addr interp.Addr, _ int64) {
	d.Checks++
	ct := d.clock(t)
	v := d.state(addr)
	if !v.w.Leq(ct) || !v.r.Leq(ct) {
		d.racy[addr] = true
	}
	v.w.Set(t, ct.Get(t))
}

// Lock implements acquire.
func (d *DJIT) Lock(t vc.TID, _ *ir.Instr, addr interp.Addr) {
	if lm := d.locks[addr]; lm != nil {
		d.clock(t).JoinWith(lm)
	}
}

// Unlock implements release.
func (d *DJIT) Unlock(t vc.TID, _ *ir.Instr, addr interp.Addr) {
	ct := d.clock(t)
	lm := d.locks[addr]
	if lm == nil {
		lm = vc.New()
		d.locks[addr] = lm
	}
	lm.Assign(ct)
	ct.Tick(t)
}

// Spawn implements fork.
func (d *DJIT) Spawn(t vc.TID, _ *ir.Instr, child vc.TID, _ interp.FrameID, _ *ir.Function) {
	d.clock(child).JoinWith(d.clock(t))
	d.clock(t).Tick(t)
}

// Join implements join.
func (d *DJIT) Join(t vc.TID, _ *ir.Instr, child vc.TID) {
	d.clock(t).JoinWith(d.clock(child))
}

// RacyAddrs returns the sorted racy addresses.
func (d *DJIT) RacyAddrs() []interp.Addr {
	out := make([]interp.Addr, 0, len(d.racy))
	for a := range d.racy {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasRaces reports whether any race was detected.
func (d *DJIT) HasRaces() bool { return len(d.racy) > 0 }
