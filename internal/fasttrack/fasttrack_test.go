package fasttrack

import (
	"testing"

	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/lang"
	"oha/internal/sched"
)

// detect runs the program under FastTrack with the given seed.
func detect(t *testing.T, src string, seed uint64) *Detector {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d := New()
	_, err = interp.Run(interp.Config{
		Prog:      p,
		Tracer:    d,
		Choose:    sched.NewSeeded(seed),
		Quantum:   3,
		BlockMask: make([]bool, len(p.Blocks)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// detectAnySeed returns whether any of several seeds reports a race.
func detectAnySeed(t *testing.T, src string) bool {
	t.Helper()
	for seed := uint64(1); seed <= 8; seed++ {
		if detect(t, src, seed).HasRaces() {
			return true
		}
	}
	return false
}

func TestNoRaceWhenLocked(t *testing.T) {
	src := `
		global c = 0;
		global m = 0;
		func w() {
			var i = 0;
			while (i < 10) {
				lock(&m);
				c = c + 1;
				unlock(&m);
				i = i + 1;
			}
		}
		func main() {
			var t1 = spawn w();
			var t2 = spawn w();
			join(t1); join(t2);
			print(c);
		}
	`
	for seed := uint64(1); seed <= 8; seed++ {
		if d := detect(t, src, seed); d.HasRaces() {
			t.Fatalf("seed %d: false race: %v", seed, d.Races())
		}
	}
}

func TestDetectsWriteWriteRace(t *testing.T) {
	src := `
		global c = 0;
		func w() { c = 5; }
		func main() {
			var t1 = spawn w();
			var t2 = spawn w();
			join(t1); join(t2);
		}
	`
	if !detectAnySeed(t, src) {
		t.Fatal("unsynchronized write-write race missed on all seeds")
	}
	// And the kind must be write-write (under some seed).
	found := false
	for seed := uint64(1); seed <= 8; seed++ {
		for _, r := range detect(t, src, seed).Races() {
			if r.Kind == WriteWrite {
				found = true
			}
		}
	}
	if !found {
		t.Error("no write-write classification")
	}
}

func TestDetectsReadWriteRaces(t *testing.T) {
	src := `
		global c = 0;
		func reader() { print(c); }
		func writer() { c = 1; }
		func main() {
			var t1 = spawn reader();
			var t2 = spawn writer();
			join(t1); join(t2);
		}
	`
	kinds := map[RaceKind]bool{}
	for seed := uint64(1); seed <= 16; seed++ {
		for _, r := range detect(t, src, seed).Races() {
			kinds[r.Kind] = true
		}
	}
	if !kinds[WriteRead] && !kinds[ReadWrite] {
		t.Fatalf("read/write race never classified: %v", kinds)
	}
}

func TestForkJoinOrders(t *testing.T) {
	// Parent writes before spawn, child reads; child writes, parent
	// reads after join: all ordered, no races.
	src := `
		global a = 0;
		global b = 0;
		func w() {
			print(a);   // ordered by fork
			b = 7;
		}
		func main() {
			a = 1;
			var t = spawn w();
			join(t);
			print(b);   // ordered by join
		}
	`
	for seed := uint64(1); seed <= 8; seed++ {
		if d := detect(t, src, seed); d.HasRaces() {
			t.Fatalf("seed %d: fork/join ordering lost: %v", seed, d.Races())
		}
	}
}

func TestLockHappensBefore(t *testing.T) {
	// Classic message-passing through a critical section: the flag and
	// data are both accessed under the lock — never racy.
	src := `
		global data = 0;
		global ready = 0;
		global m = 0;
		func producer() {
			lock(&m);
			data = 42;
			ready = 1;
			unlock(&m);
		}
		func consumer() {
			var done = 0;
			while (!done) {
				lock(&m);
				if (ready) {
					print(data);
					done = 1;
				}
				unlock(&m);
			}
		}
		func main() {
			var t1 = spawn producer();
			var t2 = spawn consumer();
			join(t1); join(t2);
		}
	`
	for seed := uint64(1); seed <= 8; seed++ {
		if d := detect(t, src, seed); d.HasRaces() {
			t.Fatalf("seed %d: false race through lock HB: %v", seed, d.Races())
		}
	}
}

func TestCustomSyncWithoutLockEventsReportsFalseRace(t *testing.T) {
	// The Figure 4 scenario: ordering comes only from lock HB around a
	// spin flag. With lock instrumentation elided, FastTrack loses the
	// edge and reports a false race — the hazard the
	// no-custom-synchronization invariant must catch.
	src := `
		global x = 0;
		global b = 0;
		global m = 0;
		func t1() {
			x = 5;
			lock(&m);
			b = 1;
			unlock(&m);
		}
		func t2() {
			var done = 0;
			while (!done) {
				lock(&m);
				done = b;
				unlock(&m);
			}
			print(x);
		}
		func main() {
			var a = spawn t1();
			var c = spawn t2();
			join(a); join(c);
		}
	`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(elideLocks bool) *Detector {
		d := New()
		cfg := interp.Config{
			Prog:      p,
			Tracer:    d,
			Choose:    sched.NewSeeded(3),
			Quantum:   3,
			BlockMask: make([]bool, len(p.Blocks)),
		}
		if elideLocks {
			cfg.SyncMask = make([]bool, len(p.Instrs)) // all lock events off
		}
		if _, err := interp.Run(cfg); err != nil {
			t.Fatal(err)
		}
		return d
	}
	full := run(false)
	if full.HasRaces() {
		// b and x are both properly ordered via the lock.
		t.Fatalf("full instrumentation reported races: %v", full.Races())
	}
	elided := run(true)
	if !elided.HasRaces() {
		t.Fatal("eliding lock instrumentation did not produce the expected false race")
	}
}

func TestElidingProvenAccessesPreservesRaces(t *testing.T) {
	// Eliding accesses that cannot race (here: g2, thread-local h)
	// must not change the race report on g.
	src := `
		global g = 0;
		global h = 0;
		func w() { g = g + 1; }
		func quiet() { h = h + 1; }
		func main() {
			var t1 = spawn w();
			var t2 = spawn w();
			quiet();
			join(t1); join(t2);
		}
	`
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mem []bool) *Detector {
		d := New()
		if _, err := interp.Run(interp.Config{
			Prog: p, Tracer: d, Choose: sched.NewSeeded(5), Quantum: 2,
			MemMask:   mem,
			BlockMask: make([]bool, len(p.Blocks)),
		}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	full := run(nil)
	// Elide the h accesses (in quiet).
	mem := make([]bool, len(p.Instrs))
	for _, in := range p.Instrs {
		if in.IsMemAccess() && in.Block.Fn.Name != "quiet" {
			mem[in.ID] = true
		}
	}
	part := run(mem)
	fk, pk := full.RaceKeys(), part.RaceKeys()
	if len(fk) == 0 {
		t.Fatal("expected a race on g")
	}
	if len(fk) != len(pk) {
		t.Fatalf("race sets differ: %v vs %v", fk, pk)
	}
	for i := range fk {
		if fk[i] != pk[i] {
			t.Fatalf("race sets differ: %v vs %v", fk, pk)
		}
	}
}

func TestReadSharedInflation(t *testing.T) {
	// Many concurrent readers then a racy writer: the read metadata
	// must inflate to a VC and the write must still be caught.
	src := `
		global g = 0;
		func reader() { print(g); }
		func writer() { g = 9; }
		func main() {
			var r1 = spawn reader();
			var r2 = spawn reader();
			var r3 = spawn reader();
			join(r1); join(r2); join(r3);
			var w = spawn writer();
			var r4 = spawn reader();
			join(w); join(r4);
		}
	`
	raced := false
	for seed := uint64(1); seed <= 16; seed++ {
		d := detect(t, src, seed)
		for _, r := range d.Races() {
			raced = true
			_ = r
		}
	}
	if !raced {
		t.Fatal("write racing concurrent reader never detected")
	}
}

func TestRaceDeduplication(t *testing.T) {
	// The same static pair racing many times reports once.
	src := `
		global g = 0;
		func w() {
			var i = 0;
			while (i < 50) { g = g + 1; i = i + 1; }
		}
		func main() {
			var t1 = spawn w();
			var t2 = spawn w();
			join(t1); join(t2);
		}
	`
	for seed := uint64(1); seed <= 8; seed++ {
		d := detect(t, src, seed)
		if len(d.Races()) > 4 { // load/store pair combinations at most
			t.Fatalf("races not deduplicated: %d reports", len(d.Races()))
		}
	}
}

func TestChecksCounted(t *testing.T) {
	d := detect(t, `
		global g = 0;
		func main() {
			var i = 0;
			while (i < 10) { g = g + 1; i = i + 1; }
		}
	`, 1)
	// 10 iterations × (1 load + 1 store) = 20 checks.
	if d.Checks != 20 {
		t.Errorf("Checks = %d, want 20", d.Checks)
	}
	if d.HasRaces() {
		t.Error("single-threaded program raced")
	}
}

func TestRaceStringAndKinds(t *testing.T) {
	r := Race{Kind: WriteWrite, Addr: interp.MakeAddr(0, 1),
		Instr: &ir.Instr{ID: 5, Op: ir.OpStore}}
	if r.String() == "" {
		t.Error("empty race string")
	}
	for _, k := range []RaceKind{WriteWrite, WriteRead, ReadWrite} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}
