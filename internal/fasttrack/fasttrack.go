// Package fasttrack implements the FastTrack dynamic happens-before
// data-race detector (Flanagan & Freund, PLDI 2009) as an interpreter
// Tracer — the dynamic-analysis client that OptFT accelerates.
//
// The implementation follows the published algorithm: every thread
// carries a vector clock C_t, every lock a vector clock L_m, and every
// memory word an epoch pair (W_x, R_x) where the read metadata
// adaptively inflates to a full vector clock when reads are concurrent
// (the READ_SHARED state). The epoch fast paths make the common case
// O(1), which is what makes FastTrack "fast"; the same structure makes
// the per-event cost here roughly constant, so eliding instrumentation
// translates into proportional time savings, as in the paper.
package fasttrack

import (
	"fmt"
	"sort"

	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/vc"
)

// RaceKind classifies a detected race.
type RaceKind uint8

// Race kinds.
const (
	WriteWrite RaceKind = iota
	WriteRead           // earlier write races with this read
	ReadWrite           // earlier read races with this write
)

func (k RaceKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write"
	case WriteRead:
		return "write-read"
	}
	return "read-write"
}

// Race is one detected data race. Prev describes the earlier access
// when known (nil when the earlier access's site was not recorded,
// e.g. a read of a READ_SHARED variable).
type Race struct {
	Kind RaceKind
	Addr interp.Addr
	// Instr is the access that detected the race.
	Instr *ir.Instr
	// Prev is the racing earlier access's instruction, if known.
	Prev *ir.Instr
	// TID is the detecting thread.
	TID vc.TID
}

func (r Race) String() string {
	prev := "?"
	if r.Prev != nil {
		prev = fmt.Sprintf("instr %d at %s", r.Prev.ID, r.Prev.Pos)
	}
	return fmt.Sprintf("%s race on %s: instr %d at %s vs %s",
		r.Kind, interp.FormatValue(r.Addr), r.Instr.ID, r.Instr.Pos, prev)
}

// Key identifies a race for deduplication and cross-detector
// comparison: the static instruction pair (ordered) plus kind.
//
// Read-write races are keyed by the writing instruction alone
// (B == -1): the identity of the earlier reader depends on whether the
// read metadata was in the EXCLUSIVE or READ_SHARED state, which in
// turn depends on which (provably race-free) reads were elided — so it
// is representation detail, not analysis result. Write-write and
// write-read races carry exact pairs (write metadata never inflates).
type Key struct {
	A, B int // instr IDs, A <= B (B == -1 when prev not part of the key)
	Kind RaceKind
}

// keyFor canonicalizes a race into its comparison key.
func keyFor(kind RaceKind, cur, prev *ir.Instr) Key {
	k := Key{A: cur.ID, B: -1, Kind: kind}
	if prev != nil && kind != ReadWrite {
		k.A, k.B = prev.ID, cur.ID
		if k.A > k.B {
			k.A, k.B = k.B, k.A
		}
	}
	return k
}

// varState is the per-variable FastTrack metadata.
type varState struct {
	w      vc.Epoch // last write epoch
	r      vc.Epoch // last read epoch, or ReadShared
	rvc    *vc.VC   // read vector clock when shared
	wInstr *ir.Instr
	rInstr *ir.Instr // valid in exclusive read state
}

// Detector is a FastTrack race detector; install it as the
// interpreter's Tracer. The zero value is not ready; use New.
type Detector struct {
	interp.NopTracer
	threads []*vc.VC
	locks   map[interp.Addr]*vc.VC
	// shadow is the per-word metadata, laid out as per-object slices
	// mirroring the interpreter's heap (shadow[obj][off]). Addresses
	// reaching Load/Store passed the interpreter's bounds checks, so
	// indexing is dense and the zero varState means "never accessed" —
	// no map lookups or per-word allocations on the hot path.
	shadow [][]varState
	races  map[Key]Race
	// racyAddrs is tracked independently of the per-static-pair race
	// dedup: one static instruction can race on several addresses.
	racyAddrs map[interp.Addr]bool
	// Checks counts read/write metadata operations performed (the
	// "FastTrack checks" cost component of Figure 5).
	Checks uint64
}

// New returns an empty detector.
func New() *Detector {
	return &Detector{
		locks:     map[interp.Addr]*vc.VC{},
		races:     map[Key]Race{},
		racyAddrs: map[interp.Addr]bool{},
	}
}

// clock returns (creating if needed) thread t's vector clock. A fresh
// thread starts at clock 1 for itself.
func (d *Detector) clock(t vc.TID) *vc.VC {
	for int(t) >= len(d.threads) {
		d.threads = append(d.threads, nil)
	}
	if d.threads[t] == nil {
		c := vc.New()
		c.Set(t, 1)
		d.threads[t] = c
	}
	return d.threads[t]
}

func (d *Detector) state(a interp.Addr) *varState {
	obj, off := interp.DecodeAddr(a)
	for obj >= len(d.shadow) {
		d.shadow = append(d.shadow, nil)
	}
	cells := d.shadow[obj]
	if int(off) >= len(cells) {
		n := int(off) + 1
		if n < 2*len(cells) {
			n = 2 * len(cells)
		}
		grown := make([]varState, n)
		copy(grown, cells)
		d.shadow[obj] = grown
		cells = grown
	}
	return &cells[off]
}

func (d *Detector) report(kind RaceKind, addr interp.Addr, t vc.TID, cur, prev *ir.Instr) {
	d.racyAddrs[addr] = true
	k := keyFor(kind, cur, prev)
	if _, dup := d.races[k]; !dup {
		d.races[k] = Race{Kind: kind, Addr: addr, Instr: cur, Prev: prev, TID: t}
	}
}

// Load implements the FastTrack read rules.
func (d *Detector) Load(t vc.TID, in *ir.Instr, addr interp.Addr, _ int64) {
	d.Checks++
	ct := d.clock(t)
	vs := d.state(addr)
	e := ct.Epoch(t)

	if vs.r == e {
		return // SAME EPOCH fast path
	}
	// Write-read race check.
	if vs.w != vc.NoEpoch && !ct.LeqEpoch(vs.w) {
		d.report(WriteRead, addr, t, in, vs.wInstr)
	}
	if vs.r == vc.ReadShared {
		vs.rvc.Set(t, e.Clock()) // SHARED
		return
	}
	if vs.r == vc.NoEpoch || ct.LeqEpoch(vs.r) {
		vs.r = e // EXCLUSIVE
		vs.rInstr = in
		return
	}
	// SHARE: inflate to a read vector clock.
	rvc := vc.New()
	rvc.Set(vs.r.TID(), vs.r.Clock())
	rvc.Set(t, e.Clock())
	vs.rvc = rvc
	vs.r = vc.ReadShared
	vs.rInstr = nil
}

// Store implements the FastTrack write rules.
func (d *Detector) Store(t vc.TID, in *ir.Instr, addr interp.Addr, _ int64) {
	d.Checks++
	ct := d.clock(t)
	vs := d.state(addr)
	e := ct.Epoch(t)

	if vs.w == e {
		return // SAME EPOCH
	}
	if vs.w != vc.NoEpoch && !ct.LeqEpoch(vs.w) {
		d.report(WriteWrite, addr, t, in, vs.wInstr)
	}
	switch {
	case vs.r == vc.ReadShared:
		if !vs.rvc.Leq(ct) {
			d.report(ReadWrite, addr, t, in, nil)
		}
		// The write dominates: drop back to exclusive-read bottom.
		vs.r = vc.NoEpoch
		vs.rvc = nil
	case vs.r != vc.NoEpoch && !ct.LeqEpoch(vs.r):
		d.report(ReadWrite, addr, t, in, vs.rInstr)
	}
	vs.w = e
	vs.wInstr = in
}

// Lock implements acquire: C_t joins the lock's clock.
func (d *Detector) Lock(t vc.TID, _ *ir.Instr, addr interp.Addr) {
	if lm := d.locks[addr]; lm != nil {
		d.clock(t).JoinWith(lm)
	}
}

// Unlock implements release: the lock's clock becomes C_t, which then
// advances.
func (d *Detector) Unlock(t vc.TID, _ *ir.Instr, addr interp.Addr) {
	ct := d.clock(t)
	lm := d.locks[addr]
	if lm == nil {
		lm = vc.New()
		d.locks[addr] = lm
	}
	lm.Assign(ct)
	ct.Tick(t)
}

// Spawn implements fork: the child inherits the parent's clock.
func (d *Detector) Spawn(t vc.TID, _ *ir.Instr, child vc.TID, _ interp.FrameID, _ *ir.Function) {
	cc := d.clock(child)
	cc.JoinWith(d.clock(t))
	d.clock(t).Tick(t)
}

// Join implements join: the parent absorbs the child's clock.
func (d *Detector) Join(t vc.TID, _ *ir.Instr, child vc.TID) {
	d.clock(t).JoinWith(d.clock(child))
}

// Races returns the deduplicated races, ordered deterministically.
func (d *Detector) Races() []Race {
	keys := make([]Key, 0, len(d.races))
	for k := range d.races {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		if keys[i].B != keys[j].B {
			return keys[i].B < keys[j].B
		}
		return keys[i].Kind < keys[j].Kind
	})
	out := make([]Race, len(keys))
	for i, k := range keys {
		out[i] = d.races[k]
	}
	return out
}

// RaceKeys returns the deduplicated race keys (static pairs), the
// canonical form used to compare two detectors' findings.
func (d *Detector) RaceKeys() []Key {
	rs := d.Races()
	out := make([]Key, len(rs))
	for i, r := range rs {
		out[i] = keyFor(r.Kind, r.Instr, r.Prev)
	}
	return out
}

// HasRaces reports whether any race was detected.
func (d *Detector) HasRaces() bool { return len(d.races) > 0 }

// RacyAddrs returns the sorted set of memory addresses on which races
// were detected. This is FastTrack's precision unit: the algorithm
// guarantees at least one reported race per variable that races in the
// observed execution, but *which* access pair gets attributed depends
// on the metadata state (exclusive vs READ_SHARED), which in turn
// depends on which provably-race-free accesses were instrumented — so
// cross-configuration equivalence is defined on racy addresses.
func (d *Detector) RacyAddrs() []interp.Addr {
	out := make([]interp.Addr, 0, len(d.racyAddrs))
	for a := range d.racyAddrs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
