// Package fasttrack implements the FastTrack dynamic happens-before
// data-race detector (Flanagan & Freund, PLDI 2009) as an interpreter
// Tracer — the dynamic-analysis client that OptFT accelerates.
//
// The implementation follows the published algorithm: every thread
// carries a vector clock C_t, every lock a vector clock L_m, and every
// memory word an epoch pair (W_x, R_x) where the read metadata
// adaptively inflates to a full vector clock when reads are concurrent
// (the READ_SHARED state). The epoch fast paths make the common case
// O(1), which is what makes FastTrack "fast"; the same structure makes
// the per-event cost here roughly constant, so eliding instrumentation
// translates into proportional time savings, as in the paper.
//
// The shadow state is laid out for the compiled engine's inline fast
// path (interp.FastTracer): the per-word read/write epochs live in
// flat per-object rows (rEp/wEp) the engine indexes directly, the
// per-thread current epochs are mirrored into a dense slice refreshed
// at every clock mutation, and the race-attribution sites live in
// parallel rIn/wIn rows. A same-epoch access is thereby settled
// inside the dispatch loop with one compare — exactly the detector's
// own SAME EPOCH early return, which both Load and Store take before
// any other check — and a thread-exclusive access (both epoch slots
// owned by the accessing thread or empty, so every vector-clock
// comparison below is a same-thread check that trivially passes)
// with one epoch store plus an attribution store, mirroring the
// EXCLUSIVE/write rules exactly. Only the truly cold metadata (the
// inflated READ_SHARED clock) stays engine-invisible.
package fasttrack

import (
	"fmt"
	"sort"

	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/vc"
)

// RaceKind classifies a detected race.
type RaceKind uint8

// Race kinds.
const (
	WriteWrite RaceKind = iota
	WriteRead           // earlier write races with this read
	ReadWrite           // earlier read races with this write
)

func (k RaceKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write"
	case WriteRead:
		return "write-read"
	}
	return "read-write"
}

// Race is one detected data race. Prev describes the earlier access
// when known (nil when the earlier access's site was not recorded,
// e.g. a read of a READ_SHARED variable).
type Race struct {
	Kind RaceKind
	Addr interp.Addr
	// Instr is the access that detected the race.
	Instr *ir.Instr
	// Prev is the racing earlier access's instruction, if known.
	Prev *ir.Instr
	// TID is the detecting thread.
	TID vc.TID
}

func (r Race) String() string {
	prev := "?"
	if r.Prev != nil {
		prev = fmt.Sprintf("instr %d at %s", r.Prev.ID, r.Prev.Pos)
	}
	return fmt.Sprintf("%s race on %s: instr %d at %s vs %s",
		r.Kind, interp.FormatValue(r.Addr), r.Instr.ID, r.Instr.Pos, prev)
}

// Key identifies a race for deduplication and cross-detector
// comparison: the static instruction pair (ordered) plus kind.
//
// Read-write races are keyed by the writing instruction alone
// (B == -1): the identity of the earlier reader depends on whether the
// read metadata was in the EXCLUSIVE or READ_SHARED state, which in
// turn depends on which (provably race-free) reads were elided — so it
// is representation detail, not analysis result. Write-write and
// write-read races carry exact pairs (write metadata never inflates).
type Key struct {
	A, B int // instr IDs, A <= B (B == -1 when prev not part of the key)
	Kind RaceKind
}

// keyFor canonicalizes a race into its comparison key.
func keyFor(kind RaceKind, cur, prev *ir.Instr) Key {
	k := Key{A: cur.ID, B: -1, Kind: kind}
	if prev != nil && kind != ReadWrite {
		k.A, k.B = prev.ID, cur.ID
		if k.A > k.B {
			k.A, k.B = k.B, k.A
		}
	}
	return k
}

// varMeta is the cold per-variable metadata the fast path never
// writes: the inflated read clock. The hot epochs live in the
// detector's rEp/wEp rows and the attribution sites in rIn/wIn, all
// indexed directly by the engine's inline fast path.
type varMeta struct {
	rvc *vc.VC // read vector clock when READ_SHARED
}

// Detector is a FastTrack race detector; install it as the
// interpreter's Tracer. The zero value is not ready; use New.
type Detector struct {
	interp.NopTracer
	threads []*vc.VC
	// epochs mirrors each thread's current epoch C_t(t)@t, refreshed
	// at every clock mutation; the engine fast path reads it directly.
	// NoEpoch means "clock not created yet, take the slow path".
	epochs []vc.Epoch
	locks  map[interp.Addr]*vc.VC
	// rEp/wEp are the per-word read/write epochs, laid out as
	// per-object rows mirroring the interpreter's heap (rEp[obj][off]).
	// Addresses reaching Load/Store passed the interpreter's bounds
	// checks, so indexing is dense and NoEpoch means "never accessed" —
	// no map lookups or per-word allocations on the hot path. meta
	// holds the cold remainder, grown in lockstep.
	rEp [][]vc.Epoch
	wEp [][]vc.Epoch
	// rIn/wIn are the race-attribution rows: the instruction of the
	// last exclusive read / last write per word. The engine's
	// thread-exclusive inline transition stores into them exactly
	// where the EXCLUSIVE/write rules below would.
	rIn  [][]*ir.Instr
	wIn  [][]*ir.Instr
	meta [][]varMeta
	// rvcPool recycles inflated read clocks: a write to a READ_SHARED
	// variable collapses its read state and frees the clock, and the
	// next SHARE inflation reuses it instead of allocating.
	rvcPool []*vc.VC
	races   map[Key]Race
	// racyAddrs is tracked independently of the per-static-pair race
	// dedup: one static instruction can race on several addresses.
	racyAddrs map[interp.Addr]bool
	// Checks counts read/write metadata operations performed (the
	// "FastTrack checks" cost component of Figure 5). Engine fast-path
	// hits count here too, via FastState.Checks.
	Checks uint64
}

// New returns an empty detector.
func New() *Detector {
	return &Detector{
		locks:     map[interp.Addr]*vc.VC{},
		races:     map[Key]Race{},
		racyAddrs: map[interp.Addr]bool{},
	}
}

// FastState implements interp.FastTracer: the engine settles
// same-epoch and thread-exclusive reads and writes inline against the
// epoch and attribution rows, counts them as Checks, and may batch
// slow-path memory events (sound here: Load/Store never abort, and
// nothing a memory event reads is mutated by anything but FlushMem
// between drain points — see fastpath.go).
func (d *Detector) FastState() *interp.FastState {
	return &interp.FastState{
		Kind:       interp.FastEpoch,
		Epochs:     &d.epochs,
		Read:       &d.rEp,
		Write:      &d.wEp,
		ReadInstr:  &d.rIn,
		WriteInstr: &d.wIn,
		Checks:     &d.Checks,
		BatchMem:   true,
	}
}

// FlushMem implements interp.FastTracer: buffered slow-path memory
// events replay through the full rules in order. Memory events never
// advance thread clocks, so the clock and epoch are loop invariants
// hoisted out of the replay; the ring drains at every slice boundary,
// so a batch is single-threaded in practice (the per-event check
// recomputes on the change anyway rather than assuming it).
func (d *Detector) FlushMem(evs []interp.MemEvent) {
	if len(evs) == 0 {
		return
	}
	t := evs[0].T
	ct := d.clock(t)
	e := ct.Epoch(t)
	for i := range evs {
		ev := &evs[i]
		if ev.T != t {
			t = ev.T
			ct = d.clock(t)
			e = ct.Epoch(t)
		}
		if ev.Store {
			d.storeAt(t, ct, e, ev.In, ev.Addr)
		} else {
			d.loadAt(t, ct, e, ev.In, ev.Addr)
		}
	}
}

// clock returns (creating if needed) thread t's vector clock. A fresh
// thread starts at clock 1 for itself.
func (d *Detector) clock(t vc.TID) *vc.VC {
	for int(t) >= len(d.threads) {
		d.threads = append(d.threads, nil)
		d.epochs = append(d.epochs, vc.NoEpoch)
	}
	if d.threads[t] == nil {
		c := vc.New()
		c.Set(t, 1)
		d.threads[t] = c
		d.epochs[t] = vc.MakeEpoch(t, 1)
	}
	return d.threads[t]
}

// refresh re-mirrors thread t's current epoch after a clock mutation.
// Under the lock discipline only Tick can raise a thread's own entry,
// but joins are refreshed too so the mirror can never go stale.
func (d *Detector) refresh(t vc.TID) {
	d.epochs[t] = d.threads[t].Epoch(t)
}

// state resolves a to its (object, offset) shadow coordinates,
// growing the epoch and metadata rows in lockstep.
func (d *Detector) state(a interp.Addr) (int, int64) {
	obj, off := interp.DecodeAddr(a)
	for obj >= len(d.rEp) {
		d.rEp = append(d.rEp, nil)
		d.wEp = append(d.wEp, nil)
		d.rIn = append(d.rIn, nil)
		d.wIn = append(d.wIn, nil)
		d.meta = append(d.meta, nil)
	}
	if int(off) >= len(d.rEp[obj]) {
		n := int(off) + 1
		if n < 2*len(d.rEp[obj]) {
			n = 2 * len(d.rEp[obj])
		}
		gr := make([]vc.Epoch, n)
		copy(gr, d.rEp[obj])
		d.rEp[obj] = gr
		gw := make([]vc.Epoch, n)
		copy(gw, d.wEp[obj])
		d.wEp[obj] = gw
		gri := make([]*ir.Instr, n)
		copy(gri, d.rIn[obj])
		d.rIn[obj] = gri
		gwi := make([]*ir.Instr, n)
		copy(gwi, d.wIn[obj])
		d.wIn[obj] = gwi
		gm := make([]varMeta, n)
		copy(gm, d.meta[obj])
		d.meta[obj] = gm
	}
	return obj, off
}

// newRVC takes a read clock from the pool (bottom) or allocates one.
func (d *Detector) newRVC() *vc.VC {
	if n := len(d.rvcPool); n > 0 {
		rvc := d.rvcPool[n-1]
		d.rvcPool = d.rvcPool[:n-1]
		return rvc
	}
	return vc.New()
}

// freeRVC recycles a collapsed read clock.
func (d *Detector) freeRVC(rvc *vc.VC) {
	if rvc != nil {
		rvc.Reset()
		d.rvcPool = append(d.rvcPool, rvc)
	}
}

func (d *Detector) report(kind RaceKind, addr interp.Addr, t vc.TID, cur, prev *ir.Instr) {
	d.racyAddrs[addr] = true
	k := keyFor(kind, cur, prev)
	if _, dup := d.races[k]; !dup {
		d.races[k] = Race{Kind: kind, Addr: addr, Instr: cur, Prev: prev, TID: t}
	}
}

// Load implements the FastTrack read rules.
func (d *Detector) Load(t vc.TID, in *ir.Instr, addr interp.Addr, _ int64) {
	ct := d.clock(t)
	d.loadAt(t, ct, ct.Epoch(t), in, addr)
}

// loadAt is Load with the thread's clock and epoch precomputed, so
// FlushMem can hoist that prologue out of a batch replay.
func (d *Detector) loadAt(t vc.TID, ct *vc.VC, e vc.Epoch, in *ir.Instr, addr interp.Addr) {
	d.Checks++
	obj, off := d.state(addr)

	r := d.rEp[obj][off]
	if r == e {
		return // SAME EPOCH fast path
	}
	w := d.wEp[obj][off]
	// Write-read race check.
	if w != vc.NoEpoch && !ct.LeqEpoch(w) {
		d.report(WriteRead, addr, t, in, d.wIn[obj][off])
	}
	if r == vc.ReadShared {
		d.meta[obj][off].rvc.Set(t, e.Clock()) // SHARED
		return
	}
	if r == vc.NoEpoch || ct.LeqEpoch(r) {
		d.rEp[obj][off] = e // EXCLUSIVE
		d.rIn[obj][off] = in
		return
	}
	// SHARE: inflate to a read vector clock (pooled).
	rvc := d.newRVC()
	rvc.Set(r.TID(), r.Clock())
	rvc.Set(t, e.Clock())
	d.meta[obj][off].rvc = rvc
	d.rEp[obj][off] = vc.ReadShared
	d.rIn[obj][off] = nil
}

// Store implements the FastTrack write rules.
func (d *Detector) Store(t vc.TID, in *ir.Instr, addr interp.Addr, _ int64) {
	ct := d.clock(t)
	d.storeAt(t, ct, ct.Epoch(t), in, addr)
}

// storeAt is Store with the thread's clock and epoch precomputed (see
// loadAt).
func (d *Detector) storeAt(t vc.TID, ct *vc.VC, e vc.Epoch, in *ir.Instr, addr interp.Addr) {
	d.Checks++
	obj, off := d.state(addr)

	w := d.wEp[obj][off]
	if w == e {
		return // SAME EPOCH
	}
	if w != vc.NoEpoch && !ct.LeqEpoch(w) {
		d.report(WriteWrite, addr, t, in, d.wIn[obj][off])
	}
	r := d.rEp[obj][off]
	switch {
	case r == vc.ReadShared:
		m := &d.meta[obj][off]
		if !m.rvc.Leq(ct) {
			d.report(ReadWrite, addr, t, in, nil)
		}
		// The write dominates: drop back to exclusive-read bottom.
		d.rEp[obj][off] = vc.NoEpoch
		d.freeRVC(m.rvc)
		m.rvc = nil
	case r != vc.NoEpoch && !ct.LeqEpoch(r):
		d.report(ReadWrite, addr, t, in, d.rIn[obj][off])
	}
	d.wEp[obj][off] = e
	d.wIn[obj][off] = in
}

// Lock implements acquire: C_t joins the lock's clock.
func (d *Detector) Lock(t vc.TID, _ *ir.Instr, addr interp.Addr) {
	if lm := d.locks[addr]; lm != nil {
		d.clock(t).JoinWith(lm)
		d.refresh(t)
	}
}

// Unlock implements release: the lock's clock becomes C_t, which then
// advances.
func (d *Detector) Unlock(t vc.TID, _ *ir.Instr, addr interp.Addr) {
	ct := d.clock(t)
	lm := d.locks[addr]
	if lm == nil {
		lm = vc.New()
		d.locks[addr] = lm
	}
	lm.Assign(ct)
	ct.Tick(t)
	d.refresh(t)
}

// Spawn implements fork: the child inherits the parent's clock.
func (d *Detector) Spawn(t vc.TID, _ *ir.Instr, child vc.TID, _ interp.FrameID, _ *ir.Function) {
	cc := d.clock(child)
	cc.JoinWith(d.clock(t))
	d.refresh(child)
	d.clock(t).Tick(t)
	d.refresh(t)
}

// Join implements join: the parent absorbs the child's clock.
func (d *Detector) Join(t vc.TID, _ *ir.Instr, child vc.TID) {
	d.clock(t).JoinWith(d.clock(child))
	d.refresh(t)
}

// Races returns the deduplicated races, ordered deterministically.
func (d *Detector) Races() []Race {
	keys := make([]Key, 0, len(d.races))
	for k := range d.races {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		if keys[i].B != keys[j].B {
			return keys[i].B < keys[j].B
		}
		return keys[i].Kind < keys[j].Kind
	})
	out := make([]Race, len(keys))
	for i, k := range keys {
		out[i] = d.races[k]
	}
	return out
}

// RaceKeys returns the deduplicated race keys (static pairs), the
// canonical form used to compare two detectors' findings.
func (d *Detector) RaceKeys() []Key {
	rs := d.Races()
	out := make([]Key, len(rs))
	for i, r := range rs {
		out[i] = keyFor(r.Kind, r.Instr, r.Prev)
	}
	return out
}

// HasRaces reports whether any race was detected.
func (d *Detector) HasRaces() bool { return len(d.races) > 0 }

// RacyAddrs returns the sorted set of memory addresses on which races
// were detected. This is FastTrack's precision unit: the algorithm
// guarantees at least one reported race per variable that races in the
// observed execution, but *which* access pair gets attributed depends
// on the metadata state (exclusive vs READ_SHARED), which in turn
// depends on which provably-race-free accesses were instrumented — so
// cross-configuration equivalence is defined on racy addresses.
func (d *Detector) RacyAddrs() []interp.Addr {
	out := make([]interp.Addr, 0, len(d.racyAddrs))
	for a := range d.racyAddrs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
