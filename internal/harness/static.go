package harness

import (
	"errors"
	"fmt"
	"io"

	"oha/internal/bitset"
	"oha/internal/core"
	"oha/internal/ctxs"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/pointsto"
	"oha/internal/staticslice"
	"oha/internal/workloads"
)

// bestPointsTo runs the most precise points-to analysis that fits the
// budget, mirroring core.buildSlicer's discipline.
func bestPointsTo(prog *ir.Program, db *invariants.DB, budget int) (*pointsto.Result, core.SliceAnalysisType, error) {
	var allowed *invariants.ContextSet
	if db != nil {
		allowed = db.Contexts
	}
	pt, err := pointsto.Analyze(prog, ctxs.NewCS(prog, budget, allowed), db)
	if err == nil {
		return pt, core.CS, nil
	}
	if !errors.Is(err, ctxs.ErrBudget) {
		return nil, core.CI, err
	}
	pt, err = pointsto.Analyze(prog, ctxs.NewCI(prog), db)
	return pt, core.CI, err
}

// Fig9Row reports base vs optimistic alias rates (Figure 9).
type Fig9Row struct {
	Name     string
	BaseRate float64
	OptRate  float64
	BaseAT   core.SliceAnalysisType
	OptAT    core.SliceAnalysisType
}

// Fig9 measures points-to precision.
func Fig9(opts Options) ([]Fig9Row, error) {
	opts = opts.Defaults()
	var rows []Fig9Row
	for _, w := range workloads.Slices() {
		pr, _, err := profiled(w, opts)
		if err != nil {
			return nil, err
		}
		base, baseAT, err := bestPointsTo(w.Prog(), nil, opts.Budget)
		if err != nil {
			return nil, fmt.Errorf("%s: base points-to: %w", w.Name, err)
		}
		opt, optAT, err := bestPointsTo(w.Prog(), pr.DB, opts.Budget)
		if err != nil {
			return nil, fmt.Errorf("%s: optimistic points-to: %w", w.Name, err)
		}
		// Fairness (§6.3): both rates are computed over the loads and
		// stores present in the optimistic analysis.
		var loads, stores []*ir.Instr
		for _, in := range opt.SeededInstrs() {
			switch in.Op {
			case ir.OpLoad:
				loads = append(loads, in)
			case ir.OpStore:
				stores = append(stores, in)
			}
		}
		rows = append(rows, Fig9Row{
			Name:     w.Name,
			BaseRate: base.AliasRateOver(loads, stores),
			OptRate:  opt.AliasRateOver(loads, stores),
			BaseAT:   baseAT,
			OptAT:    optAT,
		})
	}
	return rows, nil
}

// PrintFig9 renders the alias-rate comparison.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintf(w, "Figure 9: load/store alias rates, base vs optimistic points-to\n")
	fmt.Fprintf(w, "%-8s %10s %10s %6s %6s\n", "bench", "base", "optimistic", "bAT", "oAT")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.4f %10.4f %6s %6s\n", r.Name, r.BaseRate, r.OptRate, r.BaseAT, r.OptAT)
	}
}

// Fig10Row reports sound vs predicated static slice sizes (Figure 10).
type Fig10Row struct {
	Name      string
	BaseSize  float64 // average over the endpoint set
	OptSize   float64
	Endpoints int
}

// endpoints returns the slice endpoints used for the static figures:
// every print instruction of the program.
func endpoints(prog *ir.Program) []*ir.Instr {
	var out []*ir.Instr
	for _, in := range prog.Instrs {
		if in.Op == ir.OpPrint {
			out = append(out, in)
		}
	}
	return out
}

func avgSliceSize(sl *staticslice.Slicer, eps []*ir.Instr) float64 {
	if len(eps) == 0 {
		return 0
	}
	total := 0
	for _, e := range eps {
		total += sl.BackwardSlice(e).Size()
	}
	return float64(total) / float64(len(eps))
}

// Fig10 measures static slice sizes.
func Fig10(opts Options) ([]Fig10Row, error) {
	opts = opts.Defaults()
	var rows []Fig10Row
	for _, w := range workloads.Slices() {
		prog := w.Prog()
		eps := endpoints(prog)
		pr, _, err := profiled(w, opts)
		if err != nil {
			return nil, err
		}
		base, _, err := bestPointsTo(prog, nil, opts.Budget)
		if err != nil {
			return nil, err
		}
		opt, _, err := bestPointsTo(prog, pr.DB, opts.Budget)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Name:      w.Name,
			BaseSize:  avgSliceSize(staticslice.New(base), eps),
			OptSize:   avgSliceSize(staticslice.New(opt), eps),
			Endpoints: len(eps),
		})
	}
	return rows, nil
}

// PrintFig10 renders the slice-size comparison.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Figure 10: average static slice sizes (instructions), sound vs predicated\n")
	fmt.Fprintf(w, "%-8s %10s %11s %10s\n", "bench", "base", "optimistic", "reduction")
	for _, r := range rows {
		red := 0.0
		if r.OptSize > 0 {
			red = r.BaseSize / r.OptSize
		}
		fmt.Fprintf(w, "%-8s %10.1f %11.1f %9.2fx\n", r.Name, r.BaseSize, r.OptSize, red)
	}
}

// Fig11Row reports the per-invariant ablation (Figure 11): slice size
// as each likely invariant is enabled on top of the previous ones.
type Fig11Row struct {
	Name string
	// Sizes under: sound baseline; +likely-unreachable code; +likely
	// callee sets; +likely-unused call contexts.
	Base, LUC, Callees, Contexts float64
	// ATs reached at each step (the context invariant can unlock CS).
	BaseAT, ContextsAT core.SliceAnalysisType
}

// Fig11 measures the invariant ablation.
func Fig11(opts Options) ([]Fig11Row, error) {
	opts = opts.Defaults()
	var rows []Fig11Row
	for _, w := range workloads.Slices() {
		prog := w.Prog()
		eps := endpoints(prog)
		pr, _, err := profiled(w, opts)
		if err != nil {
			return nil, err
		}
		row := Fig11Row{Name: w.Name}

		measure := func(db *invariants.DB, restrictCtx bool) (float64, core.SliceAnalysisType, error) {
			var allowed *invariants.ContextSet
			if restrictCtx && db != nil {
				allowed = db.Contexts
			}
			pt, err := pointsto.Analyze(prog, ctxs.NewCS(prog, opts.Budget, allowed), db)
			at := core.CS
			if errors.Is(err, ctxs.ErrBudget) {
				pt, err = pointsto.Analyze(prog, ctxs.NewCI(prog), db)
				at = core.CI
			}
			if err != nil {
				return 0, at, err
			}
			return avgSliceSize(staticslice.New(pt), eps), at, nil
		}

		// Sound baseline.
		row.Base, row.BaseAT, err = measure(nil, false)
		if err != nil {
			return nil, err
		}
		// + likely-unreachable code only.
		lucOnly := lucOnlyDB(pr.DB, prog)
		row.LUC, _, err = measure(lucOnly, false)
		if err != nil {
			return nil, err
		}
		// + likely callee sets.
		withCallees := lucOnly.Clone()
		withCallees.Callees = map[int]*bitset.Set{}
		for k, v := range pr.DB.Callees {
			withCallees.Callees[k] = v.Clone()
		}
		row.Callees, _, err = measure(withCallees, false)
		if err != nil {
			return nil, err
		}
		// + likely-unused call contexts (may unlock CS).
		row.Contexts, row.ContextsAT, err = measure(pr.DB, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// lucOnlyDB builds a database with only the visited-blocks invariant
// active: callee sets disabled (nil map: sound resolution) and every
// context allowed.
func lucOnlyDB(db *invariants.DB, prog *ir.Program) *invariants.DB {
	out := invariants.NewDB()
	out.Visited = db.Visited.Clone()
	out.Callees = nil // invariant disabled
	// All-contexts: leave Contexts empty and never pass it as a
	// restriction (the measure() helper only restricts on request).
	_ = prog
	return out
}

// PrintFig11 renders the ablation table.
func PrintFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintf(w, "Figure 11: average static slice size as likely invariants are added\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %12s\n",
		"bench", "base", "+LUC", "+callees", "+contexts", "AT base→ctx")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.1f %10.1f %10.1f %10.1f %8s→%s\n",
			r.Name, r.Base, r.LUC, r.Callees, r.Contexts, r.BaseAT, r.ContextsAT)
	}
}
