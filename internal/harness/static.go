package harness

import (
	"errors"
	"fmt"
	"io"

	"oha/internal/artifacts"
	"oha/internal/bitset"
	"oha/internal/core"
	"oha/internal/ctxs"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/pointsto"
	"oha/internal/staticslice"
	"oha/internal/workloads"
)

// bestPointsTo runs the most precise points-to analysis that fits the
// budget, mirroring core.buildSlicer's discipline: context-sensitive
// first — optionally restricted to the profiled contexts — falling back
// to context-insensitive when the clone budget is exhausted.
func bestPointsTo(prog *ir.Program, db *invariants.DB, budget int, restrictCtx bool) (*pointsto.Result, core.SliceAnalysisType, error) {
	var allowed *invariants.ContextSet
	if restrictCtx && db != nil {
		allowed = db.Contexts
	}
	pt, err := pointsto.Analyze(prog, ctxs.NewCS(prog, budget, allowed), db)
	if err == nil {
		return pt, core.CS, nil
	}
	if !errors.Is(err, ctxs.ErrBudget) {
		return nil, core.CI, err
	}
	pt, err = pointsto.Analyze(prog, ctxs.NewCI(prog), db)
	return pt, core.CI, err
}

// ptArtifact pairs a points-to result with the analysis tier reached.
// It is cached read-only: pointsto.Result is immutable after Analyze.
type ptArtifact struct {
	pt *pointsto.Result
	at core.SliceAnalysisType
}

// cachedPointsTo memoizes bestPointsTo by content address (memory layer
// only: the result graph is pointer-laden). A nil db makes restrictCtx
// irrelevant, so the flag is normalized to share one cache entry.
func cachedPointsTo(e *env, prog *ir.Program, db *invariants.DB, restrictCtx bool) (*pointsto.Result, core.SliceAnalysisType, error) {
	if db == nil {
		restrictCtx = false
	}
	key := artifacts.Key(artifacts.KindPointsTo, prog, db, e.opts.Budget,
		"best", fmt.Sprintf("restrict=%v", restrictCtx))
	v, err := e.opts.Cache.Memo(key, nil, func() (any, error) {
		pt, at, err := bestPointsTo(prog, db, e.opts.Budget, restrictCtx)
		if err != nil {
			return nil, err
		}
		return ptArtifact{pt, at}, nil
	})
	if err != nil {
		return nil, core.CI, err
	}
	a := v.(ptArtifact)
	return a.pt, a.at, nil
}

// avgSliceArtifact memoizes the Figure 10/11 endpoint-set average.
type avgSliceArtifact struct {
	size float64
	at   core.SliceAnalysisType
}

// cachedAvgSlice returns the average static slice size over the
// program's endpoints under the given invariant database, memoized by
// content address (Figures 10 and 11 share entries where their
// configurations coincide).
func cachedAvgSlice(e *env, prog *ir.Program, db *invariants.DB, restrictCtx bool) (float64, core.SliceAnalysisType, error) {
	if db == nil {
		restrictCtx = false
	}
	key := artifacts.Key(artifacts.KindSlice, prog, db, e.opts.Budget,
		"avg-endpoints", fmt.Sprintf("restrict=%v", restrictCtx))
	v, err := e.opts.Cache.Memo(key, nil, func() (any, error) {
		pt, at, err := cachedPointsTo(e, prog, db, restrictCtx)
		if err != nil {
			return nil, err
		}
		return avgSliceArtifact{avgSliceSize(staticslice.New(pt), endpoints(prog)), at}, nil
	})
	if err != nil {
		return 0, core.CI, err
	}
	a := v.(avgSliceArtifact)
	return a.size, a.at, nil
}

// Fig9Row reports base vs optimistic alias rates (Figure 9).
type Fig9Row struct {
	Name     string
	BaseRate float64
	OptRate  float64
	BaseAT   core.SliceAnalysisType
	OptAT    core.SliceAnalysisType
}

// Fig9 measures points-to precision. Workloads run on the experiment
// worker pool; rows keep the suite order.
func Fig9(opts Options) ([]Fig9Row, error) {
	opts = opts.Defaults()
	env := newEnv(opts)
	return mapOrdered(opts.Parallel, workloads.Slices(), func(_ int, w *workloads.Workload) (Fig9Row, error) {
		pr, _, err := profiled(w, env)
		if err != nil {
			return Fig9Row{}, err
		}
		base, baseAT, err := cachedPointsTo(env, w.Prog(), nil, false)
		if err != nil {
			return Fig9Row{}, fmt.Errorf("%s: base points-to: %w", w.Name, err)
		}
		opt, optAT, err := cachedPointsTo(env, w.Prog(), pr.DB, true)
		if err != nil {
			return Fig9Row{}, fmt.Errorf("%s: optimistic points-to: %w", w.Name, err)
		}
		// Fairness (§6.3): both rates are computed over the loads and
		// stores present in the optimistic analysis.
		var loads, stores []*ir.Instr
		for _, in := range opt.SeededInstrs() {
			switch in.Op {
			case ir.OpLoad:
				loads = append(loads, in)
			case ir.OpStore:
				stores = append(stores, in)
			}
		}
		return Fig9Row{
			Name:     w.Name,
			BaseRate: base.AliasRateOver(loads, stores),
			OptRate:  opt.AliasRateOver(loads, stores),
			BaseAT:   baseAT,
			OptAT:    optAT,
		}, nil
	})
}

// PrintFig9 renders the alias-rate comparison.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintf(w, "Figure 9: load/store alias rates, base vs optimistic points-to\n")
	fmt.Fprintf(w, "%-8s %10s %10s %6s %6s\n", "bench", "base", "optimistic", "bAT", "oAT")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.4f %10.4f %6s %6s\n", r.Name, r.BaseRate, r.OptRate, r.BaseAT, r.OptAT)
	}
}

// Fig10Row reports sound vs predicated static slice sizes (Figure 10).
type Fig10Row struct {
	Name      string
	BaseSize  float64 // average over the endpoint set
	OptSize   float64
	Endpoints int
}

// endpoints returns the slice endpoints used for the static figures:
// every print instruction of the program.
func endpoints(prog *ir.Program) []*ir.Instr {
	var out []*ir.Instr
	for _, in := range prog.Instrs {
		if in.Op == ir.OpPrint {
			out = append(out, in)
		}
	}
	return out
}

func avgSliceSize(sl *staticslice.Slicer, eps []*ir.Instr) float64 {
	if len(eps) == 0 {
		return 0
	}
	total := 0
	for _, e := range eps {
		total += sl.BackwardSlice(e).Size()
	}
	return float64(total) / float64(len(eps))
}

// Fig10 measures static slice sizes. Workloads run on the experiment
// worker pool; a warm cache shares the per-configuration averages with
// Figure 11.
func Fig10(opts Options) ([]Fig10Row, error) {
	opts = opts.Defaults()
	env := newEnv(opts)
	return mapOrdered(opts.Parallel, workloads.Slices(), func(_ int, w *workloads.Workload) (Fig10Row, error) {
		prog := w.Prog()
		pr, _, err := profiled(w, env)
		if err != nil {
			return Fig10Row{}, err
		}
		base, _, err := cachedAvgSlice(env, prog, nil, false)
		if err != nil {
			return Fig10Row{}, err
		}
		opt, _, err := cachedAvgSlice(env, prog, pr.DB, true)
		if err != nil {
			return Fig10Row{}, err
		}
		return Fig10Row{
			Name:      w.Name,
			BaseSize:  base,
			OptSize:   opt,
			Endpoints: len(endpoints(prog)),
		}, nil
	})
}

// PrintFig10 renders the slice-size comparison.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Figure 10: average static slice sizes (instructions), sound vs predicated\n")
	fmt.Fprintf(w, "%-8s %10s %11s %10s\n", "bench", "base", "optimistic", "reduction")
	for _, r := range rows {
		red := 0.0
		if r.OptSize > 0 {
			red = r.BaseSize / r.OptSize
		}
		fmt.Fprintf(w, "%-8s %10.1f %11.1f %9.2fx\n", r.Name, r.BaseSize, r.OptSize, red)
	}
}

// Fig11Row reports the per-invariant ablation (Figure 11): slice size
// as each likely invariant is enabled on top of the previous ones.
type Fig11Row struct {
	Name string
	// Sizes under: sound baseline; +likely-unreachable code; +likely
	// callee sets; +likely-unused call contexts.
	Base, LUC, Callees, Contexts float64
	// ATs reached at each step (the context invariant can unlock CS).
	BaseAT, ContextsAT core.SliceAnalysisType
}

// Fig11 measures the invariant ablation. Workloads run on the
// experiment worker pool; each ablation step is memoized by the content
// address of its invariant configuration, so the sound baseline and the
// full-database step share cache entries with Figures 9/10.
func Fig11(opts Options) ([]Fig11Row, error) {
	opts = opts.Defaults()
	env := newEnv(opts)
	return mapOrdered(opts.Parallel, workloads.Slices(), func(_ int, w *workloads.Workload) (Fig11Row, error) {
		prog := w.Prog()
		pr, _, err := profiled(w, env)
		if err != nil {
			return Fig11Row{}, err
		}
		row := Fig11Row{Name: w.Name}

		// Sound baseline.
		row.Base, row.BaseAT, err = cachedAvgSlice(env, prog, nil, false)
		if err != nil {
			return Fig11Row{}, err
		}
		// + likely-unreachable code only.
		lucOnly := lucOnlyDB(pr.DB, prog)
		row.LUC, _, err = cachedAvgSlice(env, prog, lucOnly, false)
		if err != nil {
			return Fig11Row{}, err
		}
		// + likely callee sets.
		withCallees := lucOnly.Clone()
		withCallees.Callees = map[int]*bitset.Set{}
		for k, v := range pr.DB.Callees {
			withCallees.Callees[k] = v.Clone()
		}
		row.Callees, _, err = cachedAvgSlice(env, prog, withCallees, false)
		if err != nil {
			return Fig11Row{}, err
		}
		// + likely-unused call contexts (may unlock CS).
		row.Contexts, row.ContextsAT, err = cachedAvgSlice(env, prog, pr.DB, true)
		if err != nil {
			return Fig11Row{}, err
		}
		return row, nil
	})
}

// lucOnlyDB builds a database with only the visited-blocks invariant
// active: callee sets disabled (nil map: sound resolution) and every
// context allowed.
func lucOnlyDB(db *invariants.DB, prog *ir.Program) *invariants.DB {
	out := invariants.NewDB()
	out.Visited = db.Visited.Clone()
	out.Callees = nil // invariant disabled
	// All-contexts: leave Contexts empty and never pass it as a
	// restriction (the measure() helper only restricts on request).
	_ = prog
	return out
}

// PrintFig11 renders the ablation table.
func PrintFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintf(w, "Figure 11: average static slice size as likely invariants are added\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %12s\n",
		"bench", "base", "+LUC", "+callees", "+contexts", "AT base→ctx")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.1f %10.1f %10.1f %10.1f %8s→%s\n",
			r.Name, r.Base, r.LUC, r.Callees, r.Contexts, r.BaseAT, r.ContextsAT)
	}
}
