// Package harness regenerates every table and figure of the paper's
// evaluation (§6) over the workload suite: Figure 5 and Table 1
// (OptFT), Figure 6 and Table 2 (OptSlice), Figures 7–8 (profiling
// sweeps), and Figures 9–11 (predicated static analysis effects).
//
// Each experiment returns structured rows and has a printer that emits
// the same columns/series the paper reports. Two cost metrics appear
// side by side:
//
//   - wall-clock seconds measured on this machine (normalized to the
//     uninstrumented baseline run, like the paper's normalized-runtime
//     figures), and
//   - deterministic instrumentation-event counts, which are identical
//     on every machine and are the primary "shape" metric of this
//     reproduction.
package harness

import (
	"fmt"
	"time"

	"oha/internal/core"
	"oha/internal/ir"
	"oha/internal/workloads"
)

// Options configures the experiments.
type Options struct {
	// ProfileRuns bounds the profiling convergence loop.
	ProfileRuns int
	// TestRuns is the size of the testing set per benchmark.
	TestRuns int
	// Budget bounds context-sensitive analyses (clones).
	Budget int
	// Repeat repeats each timed dynamic run to stabilize wall-clock
	// numbers.
	Repeat int
}

// Defaults fills unset options. The defaults keep the full suite
// around a minute; the paper's 64-run profile sets are reproduced
// with ProfileRuns=64.
func (o Options) Defaults() Options {
	if o.ProfileRuns == 0 {
		o.ProfileRuns = 32
	}
	if o.TestRuns == 0 {
		o.TestRuns = 8
	}
	if o.Budget == 0 {
		o.Budget = 4096
	}
	if o.Repeat == 0 {
		o.Repeat = 3
	}
	return o
}

// profileExec builds the profiling execution for run i.
func profileExec(w *workloads.Workload, i int) core.Execution {
	return core.Execution{Inputs: w.GenInput(i), Seed: uint64(i + 1)}
}

// testExec builds the testing execution for index i (disjoint from the
// profiling range; the same generator distribution, as in the paper's
// candidate/testing corpus split).
func testExec(w *workloads.Workload, i int) core.Execution {
	return core.Execution{Inputs: w.GenInput(1000 + i), Seed: uint64(2000 + i)}
}

// timed measures the wall-clock seconds of f.
func timed(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return time.Since(start).Seconds(), err
}

// timedN runs f repeat times and returns the minimum duration (the
// usual noise-robust estimator for deterministic work).
func timedN(repeat int, f func() error) (float64, error) {
	best := -1.0
	for i := 0; i < repeat; i++ {
		d, err := timed(f)
		if err != nil {
			return 0, err
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// lastPrint returns the workload's final print instruction — the slice
// criterion used throughout (the program's primary output).
func lastPrint(prog *ir.Program) *ir.Instr {
	var out *ir.Instr
	for _, in := range prog.Instrs {
		if in.Op == ir.OpPrint {
			out = in
		}
	}
	return out
}

// profiled runs the profiling phase for a workload and returns the
// result plus the measured profiling seconds.
func profiled(w *workloads.Workload, opts Options) (*core.ProfileResult, float64, error) {
	var pr *core.ProfileResult
	sec, err := timed(func() error {
		var err error
		pr, err = core.Profile(w.Prog(), func(run int) core.Execution {
			return profileExec(w, run)
		}, opts.ProfileRuns)
		return err
	})
	if err != nil {
		return nil, 0, fmt.Errorf("%s: profiling: %w", w.Name, err)
	}
	return pr, sec, nil
}
