// Package harness regenerates every table and figure of the paper's
// evaluation (§6) over the workload suite: Figure 5 and Table 1
// (OptFT), Figure 6 and Table 2 (OptSlice), Figures 7–8 (profiling
// sweeps), and Figures 9–11 (predicated static analysis effects).
//
// Each experiment returns structured rows and has a printer that emits
// the same columns/series the paper reports. Two cost metrics appear
// side by side:
//
//   - wall-clock seconds measured on this machine (normalized to the
//     uninstrumented baseline run, like the paper's normalized-runtime
//     figures), and
//   - deterministic instrumentation-event counts, which are identical
//     on every machine and are the primary "shape" metric of this
//     reproduction.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"oha/internal/artifacts"
	"oha/internal/core"
	"oha/internal/ir"
	"oha/internal/workloads"
)

// Options configures the experiments.
type Options struct {
	// ProfileRuns bounds the profiling convergence loop.
	ProfileRuns int
	// TestRuns is the size of the testing set per benchmark.
	TestRuns int
	// Budget bounds context-sensitive analyses (clones).
	Budget int
	// Repeat repeats each timed dynamic run to stabilize wall-clock
	// numbers.
	Repeat int
	// Parallel bounds the experiment worker pool: per-workload setups,
	// testing-set replays, and profiling runs fan out over up to
	// Parallel workers (0: runtime.GOMAXPROCS(0), 1: sequential).
	// Every deterministic output — event counts, node counts, slice
	// sizes, mis-speculation rates — is identical for every value;
	// only wall-clock readings vary.
	Parallel int
	// ExclusiveTiming serializes timed sections on a global semaphore
	// so wall-clock numbers stay stable under Parallel > 1, trading
	// away most of the parallel speedup of the timed portions.
	ExclusiveTiming bool
	// Cache, when non-nil, memoizes static artifacts (points-to, MHP,
	// static-race, static-slice results) and per-run profiling
	// databases by content address across experiments.
	Cache *artifacts.Cache
}

// Defaults fills unset options. The defaults keep the full suite
// around a minute; the paper's 64-run profile sets are reproduced
// with ProfileRuns=64.
func (o Options) Defaults() Options {
	if o.ProfileRuns == 0 {
		o.ProfileRuns = 32
	}
	if o.TestRuns == 0 {
		o.TestRuns = 8
	}
	if o.Budget == 0 {
		o.Budget = 4096
	}
	if o.Repeat == 0 {
		o.Repeat = 3
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// env bundles one experiment invocation's options with its timing gate
// and artifact cache.
type env struct {
	opts Options
	gate *sync.Mutex // non-nil: exclusive-timing semaphore
}

// newEnv prepares the experiment environment (opts must already have
// defaults applied).
func newEnv(opts Options) *env {
	e := &env{opts: opts}
	if opts.ExclusiveTiming {
		e.gate = &sync.Mutex{}
	}
	return e
}

// timed measures f, holding the exclusive-timing semaphore if enabled.
func (e *env) timed(f func() error) (float64, error) {
	if e.gate != nil {
		e.gate.Lock()
		defer e.gate.Unlock()
	}
	return timed(f)
}

// timedN is timedN under the exclusive-timing semaphore: the whole
// repeat loop runs exclusively so the minimum is taken over undisturbed
// repetitions.
func (e *env) timedN(f func() error) (float64, error) {
	if e.gate != nil {
		e.gate.Lock()
		defer e.gate.Unlock()
	}
	return timedN(e.opts.Repeat, f)
}

// profileExec builds the profiling execution for run i.
func profileExec(w *workloads.Workload, i int) core.Execution {
	return core.Execution{Inputs: w.GenInput(i), Seed: uint64(i + 1)}
}

// testExec builds the testing execution for index i (disjoint from the
// profiling range; the same generator distribution, as in the paper's
// candidate/testing corpus split).
func testExec(w *workloads.Workload, i int) core.Execution {
	return core.Execution{Inputs: w.GenInput(1000 + i), Seed: uint64(2000 + i)}
}

// timed measures the wall-clock seconds of f.
func timed(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return time.Since(start).Seconds(), err
}

// timedN runs f repeat times and returns the minimum duration (the
// usual noise-robust estimator for deterministic work).
func timedN(repeat int, f func() error) (float64, error) {
	best := -1.0
	for i := 0; i < repeat; i++ {
		d, err := timed(f)
		if err != nil {
			return 0, err
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// lastPrint returns the workload's final print instruction — the slice
// criterion used throughout (the program's primary output).
func lastPrint(prog *ir.Program) *ir.Instr {
	var out *ir.Instr
	for _, in := range prog.Instrs {
		if in.Op == ir.OpPrint {
			out = in
		}
	}
	return out
}

// profiled runs the profiling phase for a workload and returns the
// result plus the measured profiling seconds. Profiling runs fan out
// over the experiment's worker pool; the merge replays sequential run
// order, so the databases are bit-identical for every Parallel value.
// Under ExclusiveTiming the whole profiling phase holds the timing
// semaphore (it is a timed section).
func profiled(w *workloads.Workload, e *env) (*core.ProfileResult, float64, error) {
	var pr *core.ProfileResult
	sec, err := e.timed(func() error {
		var err error
		pr, err = core.ProfileWith(w.Prog(), func(run int) core.Execution {
			return profileExec(w, run)
		}, core.ProfileOptions{
			MaxRuns: e.opts.ProfileRuns,
			Workers: e.opts.Parallel,
			Cache:   e.opts.Cache,
		})
		return err
	})
	if err != nil {
		return nil, 0, fmt.Errorf("%s: profiling: %w", w.Name, err)
	}
	return pr, sec, nil
}
