package harness

import (
	"strings"
	"testing"

	"oha/internal/artifacts"
)

func TestAdaptiveShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rows, err := Adaptive(tiny())
	if err != nil {
		t.Fatal(err) // soundness gate fires as an error
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Attempts != r.TestRuns+r.Rollbacks {
			t.Errorf("%s: attempts %d != runs %d + rollbacks %d (a refinable violation must retry exactly once)",
				r.Name, r.Attempts, r.TestRuns, r.Rollbacks)
		}
		if r.Generations != len(r.DBDigests) {
			t.Errorf("%s: generation %d but %d history records", r.Name, r.Generations, len(r.DBDigests))
		}
		for i := 1; i < len(r.DBDigests); i++ {
			if r.DBDigests[i] == r.DBDigests[i-1] {
				t.Errorf("%s: generation %d did not change the DB digest", r.Name, i+1)
			}
		}
	}
	var sb strings.Builder
	PrintAdaptive(&sb, rows)
	if !strings.Contains(sb.String(), "lusearch") || !strings.Contains(sb.String(), "generations") {
		t.Error("printer dropped rows")
	}
}

// deterministicAdapt strips the wall-clock field.
func deterministicAdapt(rows []AdaptRow) []AdaptRow {
	out := make([]AdaptRow, len(rows))
	copy(out, rows)
	for i := range out {
		out[i].ResolveSec = 0
	}
	return out
}

// TestAdaptiveParallelDeterminism: the generation histories — DB and
// mask digest sequences — are bit-identical across pool sizes and
// cache temperature.
func TestAdaptiveParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	base := tiny()
	base.Parallel = 1
	seq, err := Adaptive(base)
	if err != nil {
		t.Fatal(err)
	}
	want := deterministicAdapt(seq)

	cache := artifacts.New("")
	for _, parallel := range []int{2, 8} {
		for pass := 0; pass < 2; pass++ { // second pass: warm cache
			opts := tiny()
			opts.Parallel = parallel
			opts.Cache = cache
			rows, err := Adaptive(opts)
			if err != nil {
				t.Fatalf("parallel=%d pass=%d: %v", parallel, pass, err)
			}
			got := deterministicAdapt(rows)
			for i := range want {
				if !equalAdaptRows(got[i], want[i]) {
					t.Errorf("parallel=%d pass=%d: row %d diverged:\n got %+v\nwant %+v",
						parallel, pass, i, got[i], want[i])
				}
			}
		}
	}
}

func equalAdaptRows(a, b AdaptRow) bool {
	if a.Name != b.Name || a.TestRuns != b.TestRuns || a.Attempts != b.Attempts ||
		a.Rollbacks != b.Rollbacks || a.Generations != b.Generations ||
		a.PostRefineRollbacks != b.PostRefineRollbacks ||
		len(a.DBDigests) != len(b.DBDigests) || len(a.MaskDigests) != len(b.MaskDigests) {
		return false
	}
	for i := range a.DBDigests {
		if a.DBDigests[i] != b.DBDigests[i] {
			return false
		}
	}
	for i := range a.MaskDigests {
		if a.MaskDigests[i] != b.MaskDigests[i] {
			return false
		}
	}
	return true
}
