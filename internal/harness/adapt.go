package harness

import (
	"fmt"
	"io"

	"oha/internal/adapt"
	"oha/internal/core"
	"oha/internal/workloads"
)

// AdaptRow is one benchmark's adaptive-speculation measurement: the
// closed violation → refinement → re-analysis loop run over the
// testing set. Every field except ResolveSec is deterministic — a pure
// function of the workload's inputs — and independent of
// Options.Parallel.
type AdaptRow struct {
	Name     string
	TestRuns int

	// Attempts counts optimistic runs including retries; Rollbacks the
	// attempts that mis-speculated. With adaptation each violated fact
	// costs exactly one rollback, so Attempts = TestRuns + Rollbacks.
	Attempts  int
	Rollbacks int
	// Generations is the final deployed generation (1 = nothing ever
	// refined). PostRefineRollbacks counts rollbacks under a refined
	// configuration — fresh facts violated later, never a repeat.
	Generations         int
	PostRefineRollbacks uint64
	// ResolveSec is the total background re-analysis wall clock that
	// produced generations 2..n (machine-dependent; excluded from the
	// determinism guarantee).
	ResolveSec float64

	// DBDigests and MaskDigests fingerprint the generation history in
	// deployment order — the bit-identical-across-worker-counts
	// sequence the adaptive layer guarantees.
	DBDigests   []string
	MaskDigests []string
}

// Adaptive runs the race suite through the adaptive speculation
// manager: profile once, then feed the testing set through the
// refine-and-retry loop, verifying every attempt against full
// FastTrack (rollback re-execution keeps each attempt sound; the
// retries only recover speculation). Workloads fan out over the
// experiment pool; within one workload the testing runs are
// sequential, because the generation history is defined by observation
// order.
func Adaptive(opts Options) ([]AdaptRow, error) {
	opts = opts.Defaults()
	env := newEnv(opts)
	return mapOrdered(opts.Parallel, workloads.Races(), func(_ int, w *workloads.Workload) (AdaptRow, error) {
		return adaptiveRow(env, w)
	})
}

func adaptiveRow(env *env, w *workloads.Workload) (AdaptRow, error) {
	opts := env.opts
	pr, _, err := profiled(w, env)
	if err != nil {
		return AdaptRow{}, err
	}
	prog := w.Prog()
	m := adapt.New(prog, pr.DB, adapt.Options{Cache: opts.Cache})
	row := AdaptRow{Name: w.Name, TestRuns: opts.TestRuns}
	for i := 0; i < opts.TestRuns; i++ {
		e := testExec(w, i)
		ft, err := core.RunFastTrack(prog, e, core.RunOptions{})
		if err != nil {
			return AdaptRow{}, fmt.Errorf("%s: fasttrack: %w", w.Name, err)
		}
		attempts, err := m.RunRace(e, core.RunOptions{})
		if err != nil {
			return AdaptRow{}, fmt.Errorf("%s: adaptive run %d: %w", w.Name, i, err)
		}
		for _, a := range attempts {
			row.Attempts++
			if a.Report.RolledBack {
				row.Rollbacks++
			}
			// Soundness gate across every generation.
			if !core.SameRaces(ft, a.Report) {
				return AdaptRow{}, fmt.Errorf("%s: generation %d diverged from FastTrack (ft=%v opt=%v)",
					w.Name, a.Generation, ft.Races, a.Report.Races)
			}
		}
	}
	st := m.Status()
	row.Generations = st.Generation
	row.PostRefineRollbacks = st.PostRefineRollbacks
	for _, g := range st.History {
		row.ResolveSec += g.ResolveSeconds
		row.DBDigests = append(row.DBDigests, g.DBDigest)
		row.MaskDigests = append(row.MaskDigests, g.MaskDigest)
	}
	return row, nil
}

// PrintAdaptive renders the adaptive-speculation table.
func PrintAdaptive(w io.Writer, rows []AdaptRow) {
	fmt.Fprintf(w, "Adaptive speculation: violation -> refinement -> re-analysis over the testing set\n")
	fmt.Fprintf(w, "%-11s %5s %9s %10s %12s %12s %12s\n",
		"benchmark", "runs", "attempts", "rollbacks", "generations", "post-refine", "resolve(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %5d %9d %10d %12d %12d %12.2f\n",
			r.Name, r.TestRuns, r.Attempts, r.Rollbacks, r.Generations,
			r.PostRefineRollbacks, r.ResolveSec*1000)
	}
	fmt.Fprintf(w, "(attempts = runs + rollbacks: each violated fact is refined away after one rollback)\n")
}
