package harness

import (
	"fmt"
	"io"
	"math"

	"oha/internal/core"
	"oha/internal/workloads"
)

// Fig5Row is one benchmark's Figure 5 measurement: normalized runtimes
// of FastTrack, hybrid FastTrack, and OptFT, with the work breakdown.
type Fig5Row struct {
	Name     string
	RaceFree bool // right of the red line: statically proven race-free

	PlainSec  float64 // framework (uninstrumented) baseline
	FTSec     float64
	HybridSec float64
	OptSec    float64

	// Deterministic work counters, summed over the testing set.
	FTEvents     uint64 // instrumented ops under full FastTrack
	HybridEvents uint64
	OptEvents    uint64 // includes invariant-check events
	CheckEvents  uint64 // invariant-check share of OptEvents
	Rollbacks    int    // mis-speculated testing runs

	// Static results.
	SoundPairs int // racy pairs the sound analysis reports
	PredPairs  int
}

// Norm returns runtime normalized to the uninstrumented baseline.
func (r Fig5Row) Norm(sec float64) float64 {
	if r.PlainSec <= 0 {
		return 0
	}
	return sec / r.PlainSec
}

// raceSetup bundles the per-benchmark artifacts shared by fig5/tab1.
type raceSetup struct {
	w          *workloads.Workload
	pr         *core.ProfileResult
	profileSec float64
	opt        *core.OptFT
	soundSec   float64 // sound static analysis seconds
	predSec    float64 // predicated static analysis + custom-sync seconds
}

func setupRace(w *workloads.Workload, e *env) (*raceSetup, error) {
	pr, profSec, err := profiled(w, e)
	if err != nil {
		return nil, err
	}
	s := &raceSetup{w: w, pr: pr, profileSec: profSec}
	s.soundSec, err = e.timed(func() error {
		_, err := core.NewHybridFTCached(w.Prog(), e.opts.Cache)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("%s: sound static: %w", w.Name, err)
	}
	s.predSec, err = e.timed(func() error {
		o, err := core.NewOptFTCached(w.Prog(), pr.DB, e.opts.Cache)
		if err != nil {
			return err
		}
		s.opt = o
		// Custom-sync validation over (a few of) the profiling runs.
		n := pr.Runs
		if n > 4 {
			n = 4
		}
		execs := make([]core.Execution, n)
		for i := range execs {
			execs[i] = profileExec(w, i)
		}
		return o.ValidateCustomSync(execs, core.RunOptions{})
	})
	if err != nil {
		return nil, fmt.Errorf("%s: predicated static: %w", w.Name, err)
	}
	return s, nil
}

// Fig5 measures the race-detection suite. Workloads run on the
// experiment worker pool (Options.Parallel); rows keep the Figure 5
// order and every deterministic column is independent of the pool size.
func Fig5(opts Options) ([]Fig5Row, error) {
	opts = opts.Defaults()
	env := newEnv(opts)
	return mapOrdered(opts.Parallel, workloads.Races(), func(_ int, w *workloads.Workload) (Fig5Row, error) {
		return fig5Row(env, w)
	})
}

// fig5Row measures one benchmark for Figure 5.
func fig5Row(env *env, w *workloads.Workload) (Fig5Row, error) {
	opts := env.opts
	s, err := setupRace(w, env)
	if err != nil {
		return Fig5Row{}, err
	}
	row := Fig5Row{
		Name:       w.Name,
		RaceFree:   w.RaceFree,
		SoundPairs: len(s.opt.Sound.Static.Pairs),
		PredPairs:  len(s.opt.Pred.Pairs),
	}

	prog := w.Prog()
	for i := 0; i < opts.TestRuns; i++ {
		e := testExec(w, i)
		sec, err := env.timedN(func() error {
			_, err := core.RunPlain(prog, e, core.RunOptions{})
			return err
		})
		if err != nil {
			return Fig5Row{}, fmt.Errorf("%s: plain: %w", w.Name, err)
		}
		row.PlainSec += sec

		var ft, hy, op *core.RaceReport
		sec, err = env.timedN(func() error {
			ft, err = core.RunFastTrack(prog, e, core.RunOptions{})
			return err
		})
		if err != nil {
			return Fig5Row{}, fmt.Errorf("%s: fasttrack: %w", w.Name, err)
		}
		row.FTSec += sec
		row.FTEvents += ft.Stats.InstrumentedOps()

		sec, err = env.timedN(func() error {
			hy, err = s.opt.Sound.Run(e, core.RunOptions{})
			return err
		})
		if err != nil {
			return Fig5Row{}, fmt.Errorf("%s: hybrid: %w", w.Name, err)
		}
		row.HybridSec += sec
		row.HybridEvents += hy.Stats.InstrumentedOps()

		sec, err = env.timedN(func() error {
			op, err = s.opt.Run(e, core.RunOptions{})
			return err
		})
		if err != nil {
			return Fig5Row{}, fmt.Errorf("%s: optimistic: %w", w.Name, err)
		}
		row.OptSec += sec
		row.OptEvents += op.Stats.InstrumentedOps()
		row.CheckEvents += op.CheckEvents
		if op.RolledBack {
			row.Rollbacks++
		}

		// Soundness gate: the three detectors must flag the same
		// racy variables (FastTrack's cross-configuration guarantee).
		if !core.SameRaces(ft, hy) || !core.SameRaces(ft, op) {
			return Fig5Row{}, fmt.Errorf("%s: race reports diverged (ft=%v hybrid=%v opt=%v)",
				w.Name, ft.Races, hy.Races, op.Races)
		}
	}
	return row, nil
}

// PrintFig5 renders the Figure 5 table.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "Figure 5: normalized race-detection runtimes (x = runtime / uninstrumented)\n")
	fmt.Fprintf(w, "%-11s %9s %9s %9s | %12s %12s %12s %7s %9s\n",
		"benchmark", "FastTrack", "HybridFT", "OptFT", "FT events", "Hyb events", "Opt events", "checks%", "rollbacks")
	for _, r := range rows {
		marker := ""
		if r.RaceFree {
			marker = " *" // right of the paper's red line
		}
		checkPct := 0.0
		if r.OptEvents > 0 {
			checkPct = 100 * float64(r.CheckEvents) / float64(r.OptEvents)
		}
		fmt.Fprintf(w, "%-11s %8.2fx %8.2fx %8.2fx | %12d %12d %12d %6.1f%% %9d%s\n",
			r.Name, r.Norm(r.FTSec), r.Norm(r.HybridSec), r.Norm(r.OptSec),
			r.FTEvents, r.HybridEvents, r.OptEvents, checkPct, r.Rollbacks, marker)
	}
	fmt.Fprintf(w, "(* = statically proven race-free by the sound analysis)\n")
}

// Tab1Row is one benchmark's Table 1 measurement.
type Tab1Row struct {
	Name        string
	SoundSec    float64 // traditional hybrid static analysis time
	ProfileSec  float64
	ProfileRuns int
	PredSec     float64 // optimistic static analysis (+ custom-sync) time

	// Break-even baseline-execution seconds (math.Inf(1) = never).
	BreakEvenVsHybrid float64
	BreakEvenVsFT     float64
	// Dynamic speedups.
	SpeedupVsHybrid float64
	SpeedupVsFT     float64
}

// Tab1 computes end-to-end analysis economics for the benchmarks not
// statically proven race-free (Table 1 lists exactly those).
func Tab1(opts Options) ([]Tab1Row, error) {
	opts = opts.Defaults()
	fig5, err := Fig5(opts)
	if err != nil {
		return nil, err
	}
	byName := map[string]Fig5Row{}
	for _, r := range fig5 {
		byName[r.Name] = r
	}
	env := newEnv(opts)
	var racy []*workloads.Workload
	for _, w := range workloads.Races() {
		if !w.RaceFree {
			racy = append(racy, w)
		}
	}
	return mapOrdered(opts.Parallel, racy, func(_ int, w *workloads.Workload) (Tab1Row, error) {
		f5 := byName[w.Name]
		s, err := setupRace(w, env)
		if err != nil {
			return Tab1Row{}, err
		}
		row := Tab1Row{
			Name:        w.Name,
			SoundSec:    s.soundSec,
			ProfileSec:  s.profileSec,
			ProfileRuns: s.pr.Runs,
			PredSec:     s.predSec,
		}
		row.SpeedupVsHybrid = ratio(f5.HybridSec, f5.OptSec)
		row.SpeedupVsFT = ratio(f5.FTSec, f5.OptSec)
		row.BreakEvenVsHybrid = breakEven(
			s.profileSec+s.predSec+s.soundSec, // optimistic startup (incl. rollback fallback analysis)
			s.soundSec,                        // traditional startup
			f5.HybridSec/f5.PlainSec, f5.OptSec/f5.PlainSec)
		row.BreakEvenVsFT = breakEven(
			s.profileSec+s.predSec+s.soundSec,
			0,
			f5.FTSec/f5.PlainSec, f5.OptSec/f5.PlainSec)
		return row, nil
	})
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// breakEven solves optStart + optRate*T <= tradStart + tradRate*T for
// the baseline-execution time T (seconds).
func breakEven(optStart, tradStart, tradRate, optRate float64) float64 {
	if optRate >= tradRate {
		if optStart <= tradStart {
			return 0
		}
		return math.Inf(1)
	}
	t := (optStart - tradStart) / (tradRate - optRate)
	if t < 0 {
		return 0
	}
	return t
}

// PrintTab1 renders the Table 1 table.
func PrintTab1(w io.Writer, rows []Tab1Row) {
	fmt.Fprintf(w, "Table 1: OptFT end-to-end analysis economics\n")
	fmt.Fprintf(w, "%-11s %11s %15s %11s | %14s %12s | %9s %9s\n",
		"benchmark", "static(ms)", "profile(ms/run)", "pred(ms)", "breakeven-hyb", "breakeven-ft", "spd-hyb", "spd-ft")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %11.2f %10.2f/%3d %11.2f | %14s %12s | %8.2fx %8.2fx\n",
			r.Name, r.SoundSec*1000, r.ProfileSec*1000, r.ProfileRuns, r.PredSec*1000,
			fmtBE(r.BreakEvenVsHybrid), fmtBE(r.BreakEvenVsFT),
			r.SpeedupVsHybrid, r.SpeedupVsFT)
	}
}

func fmtBE(t float64) string {
	if math.IsInf(t, 1) {
		return "never"
	}
	if t == 0 {
		return "0s"
	}
	if t < 1 {
		return fmt.Sprintf("%.1fms", t*1000)
	}
	return fmt.Sprintf("%.2fs", t)
}
