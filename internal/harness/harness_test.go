package harness

import (
	"math"
	"strings"
	"testing"

	"oha/internal/core"
)

// tiny returns options that keep the experiments fast in tests.
func tiny() Options {
	return Options{ProfileRuns: 8, TestRuns: 2, Budget: 24, Repeat: 1}
}

func TestFig5ShapesAndSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rows, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err) // the soundness gate fires as an error
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RaceFree {
			// Statically race-free: hybrid and optimistic do (almost)
			// no per-access work.
			if r.HybridEvents > 100 || r.OptEvents > 100 {
				t.Errorf("%s: race-free benchmark still instrumented (%d/%d)",
					r.Name, r.HybridEvents, r.OptEvents)
			}
		}
		if r.OptEvents > r.FTEvents {
			t.Errorf("%s: optimistic events exceed FastTrack (%d > %d)",
				r.Name, r.OptEvents, r.FTEvents)
		}
		if r.HybridEvents > r.FTEvents {
			t.Errorf("%s: hybrid events exceed FastTrack", r.Name)
		}
	}
	// The headline benchmarks must show real elision.
	byName := map[string]Fig5Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, name := range []string{"lusearch", "raytracer", "moldyn"} {
		r := byName[name]
		if r.OptEvents*2 > r.HybridEvents {
			t.Errorf("%s: OptFT events %d not well below hybrid %d",
				name, r.OptEvents, r.HybridEvents)
		}
	}
	var sb strings.Builder
	PrintFig5(&sb, rows)
	if !strings.Contains(sb.String(), "lusearch") {
		t.Error("printer dropped rows")
	}
}

func TestFig6ShapesAndSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rows, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err) // slice-equality gate fires as an error
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.OptNodes > r.HybridNodes {
			t.Errorf("%s: optimistic traced more than hybrid (%d > %d)",
				r.Name, r.OptNodes, r.HybridNodes)
		}
	}
	// zlib is the headline speedup; vim must show the CI→CS unlock.
	z := byName["zlib"]
	if z.OptNodes*5 > z.HybridNodes {
		t.Errorf("zlib: node reduction too small (%d vs %d)", z.OptNodes, z.HybridNodes)
	}
	v := byName["vim"]
	if v.HybridAT != core.CI || v.OptAT != core.CS {
		t.Errorf("vim ATs = %s/%s, want CI/CS", v.HybridAT, v.OptAT)
	}
	var sb strings.Builder
	PrintFig6(&sb, rows)
	if !strings.Contains(sb.String(), "zlib") {
		t.Error("printer dropped rows")
	}
}

func TestFig9OptimisticNeverWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rows, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OptRate > r.BaseRate+1e-9 {
			t.Errorf("%s: optimistic alias rate %.4f above base %.4f",
				r.Name, r.OptRate, r.BaseRate)
		}
	}
}

func TestFig11Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rows, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.LUC > r.Base+1e-9 || r.Callees > r.LUC+1e-9 || r.Contexts > r.Callees+1e-9 {
			t.Errorf("%s: ablation not monotone: %.1f %.1f %.1f %.1f",
				r.Name, r.Base, r.LUC, r.Callees, r.Contexts)
		}
	}
}

func TestBreakEvenMath(t *testing.T) {
	// Optimistic cheaper at runtime: break-even at the startup gap.
	be := breakEven(10, 2, 2.0, 1.0)
	if math.Abs(be-8) > 1e-9 {
		t.Errorf("breakEven = %v, want 8", be)
	}
	// Optimistic not cheaper at runtime and dearer to start: never.
	if !math.IsInf(breakEven(10, 2, 1.0, 1.5), 1) {
		t.Error("expected never")
	}
	// Cheaper everywhere: immediate.
	if breakEven(1, 2, 2.0, 1.0) != 0 {
		t.Error("expected immediate break-even")
	}
}

func TestFmtBE(t *testing.T) {
	if fmtBE(math.Inf(1)) != "never" || fmtBE(0) != "0s" {
		t.Error("fmtBE sentinels wrong")
	}
	if !strings.Contains(fmtBE(0.005), "ms") || !strings.Contains(fmtBE(3.2), "s") {
		t.Error("fmtBE units wrong")
	}
}

// Printer smoke tests over synthetic rows (the expensive experiment
// paths are covered by the Fig5/Fig6 tests above and cmd/ohabench).
func TestPrinters(t *testing.T) {
	var sb strings.Builder
	PrintTab1(&sb, []Tab1Row{{
		Name: "x", SoundSec: 0.1, ProfileSec: 0.2, ProfileRuns: 3,
		PredSec: 0.05, BreakEvenVsHybrid: 1.5, BreakEvenVsFT: math.Inf(1),
		SpeedupVsHybrid: 2, SpeedupVsFT: 3,
	}})
	PrintTab2(&sb, []Tab2Row{{
		Name: "y", TradAT: core.CI, TradSec: 0.1, OptAT: core.CS,
		OptSec: 0.2, ProfSec: 0.3, ProfRuns: 4, BreakEvenSec: 0, DynamicSpeedup: 5,
	}})
	rows := []SweepRow{{Name: "z", Points: []SweepPoint{
		{ProfileRuns: 1, MisSpecRate: 0.5, SliceSize: 10},
		{ProfileRuns: 2, MisSpecRate: 0, SliceSize: 12},
		{ProfileRuns: 4, MisSpecRate: 0, SliceSize: 12},
		{ProfileRuns: 8, MisSpecRate: 0, SliceSize: 12},
		{ProfileRuns: 16, MisSpecRate: 0, SliceSize: 12},
		{ProfileRuns: 32, MisSpecRate: 0, SliceSize: 12},
		{ProfileRuns: 64, MisSpecRate: 0, SliceSize: 12},
	}}}
	PrintFig7(&sb, rows)
	PrintFig8(&sb, rows)
	PrintFig9(&sb, []Fig9Row{{Name: "w", BaseRate: 0.5, OptRate: 0.25, BaseAT: core.CI, OptAT: core.CS}})
	PrintFig10(&sb, []Fig10Row{{Name: "v", BaseSize: 100, OptSize: 10, Endpoints: 2}})
	PrintFig11(&sb, []Fig11Row{{Name: "u", Base: 9, LUC: 8, Callees: 7, Contexts: 6, BaseAT: core.CI, ContextsAT: core.CS}})
	out := sb.String()
	for _, frag := range []string{"never", "Table 1", "Table 2", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11", "50.0%", "10.00x"} {
		if !strings.Contains(out, frag) {
			t.Errorf("printer output missing %q", frag)
		}
	}
}
