package harness

import (
	"fmt"
	"io"

	"oha/internal/core"
	"oha/internal/workloads"
)

// Fig6Row is one benchmark's Figure 6 measurement: normalized runtimes
// of the traditional hybrid slicer and OptSlice.
type Fig6Row struct {
	Name string

	PlainSec  float64
	HybridSec float64
	OptSec    float64

	HybridNodes uint64 // dynamic trace nodes recorded (work metric)
	OptNodes    uint64
	CheckEvents uint64
	Rollbacks   int

	HybridStatic int // static slice sizes feeding the tracers
	OptStatic    int
	HybridAT     core.SliceAnalysisType
	OptAT        core.SliceAnalysisType
}

// Norm returns runtime normalized to the uninstrumented baseline.
func (r Fig6Row) Norm(sec float64) float64 {
	if r.PlainSec <= 0 {
		return 0
	}
	return sec / r.PlainSec
}

// sliceSetup bundles per-benchmark slicing artifacts.
type sliceSetup struct {
	w          *workloads.Workload
	pr         *core.ProfileResult
	profileSec float64
	opt        *core.OptSlice
	hy         *core.HybridSlicer
	soundSec   float64
	predSec    float64
}

func setupSlice(w *workloads.Workload, e *env) (*sliceSetup, error) {
	pr, profSec, err := profiled(w, e)
	if err != nil {
		return nil, err
	}
	prog := w.Prog()
	criterion := lastPrint(prog)
	s := &sliceSetup{w: w, pr: pr, profileSec: profSec}
	s.soundSec, err = e.timed(func() error {
		var err error
		s.hy, err = core.NewHybridSlicerCached(prog, criterion, e.opts.Budget, e.opts.Cache)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("%s: sound static slice: %w", w.Name, err)
	}
	s.predSec, err = e.timed(func() error {
		var err error
		s.opt, err = core.NewOptSliceCached(prog, pr.DB, criterion, e.opts.Budget, e.opts.Cache)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("%s: predicated static slice: %w", w.Name, err)
	}
	return s, nil
}

// Fig6 measures the slicing suite. Workloads run on the experiment
// worker pool (Options.Parallel); rows keep the Figure 6 order and
// every deterministic column is independent of the pool size.
func Fig6(opts Options) ([]Fig6Row, error) {
	opts = opts.Defaults()
	env := newEnv(opts)
	return mapOrdered(opts.Parallel, workloads.Slices(), func(_ int, w *workloads.Workload) (Fig6Row, error) {
		return fig6Row(env, w)
	})
}

// fig6Row measures one benchmark for Figure 6.
func fig6Row(env *env, w *workloads.Workload) (Fig6Row, error) {
	opts := env.opts
	s, err := setupSlice(w, env)
	if err != nil {
		return Fig6Row{}, err
	}
	row := Fig6Row{
		Name:         w.Name,
		HybridStatic: s.hy.Static.Size(),
		OptStatic:    s.opt.Static.Size(),
		HybridAT:     s.hy.AT,
		OptAT:        s.opt.AT,
	}
	prog := w.Prog()
	for i := 0; i < opts.TestRuns; i++ {
		e := testExec(w, i)
		sec, err := env.timedN(func() error {
			_, err := core.RunPlain(prog, e, core.RunOptions{})
			return err
		})
		if err != nil {
			return Fig6Row{}, fmt.Errorf("%s: plain: %w", w.Name, err)
		}
		row.PlainSec += sec

		var hrep, orep *core.SliceReport
		sec, err = env.timedN(func() error {
			hrep, err = s.hy.Run(e, core.RunOptions{})
			return err
		})
		if err != nil {
			return Fig6Row{}, fmt.Errorf("%s: hybrid: %w", w.Name, err)
		}
		row.HybridSec += sec
		row.HybridNodes += uint64(hrep.TraceNodes)

		sec, err = env.timedN(func() error {
			orep, err = s.opt.Run(e, core.RunOptions{})
			return err
		})
		if err != nil {
			return Fig6Row{}, fmt.Errorf("%s: optimistic: %w", w.Name, err)
		}
		row.OptSec += sec
		row.OptNodes += uint64(orep.TraceNodes)
		row.CheckEvents += orep.CheckEvents
		if orep.RolledBack {
			row.Rollbacks++
		}

		// Soundness gate: identical dynamic slices.
		if (hrep.Slice == nil) != (orep.Slice == nil) ||
			(hrep.Slice != nil && !hrep.Slice.Equal(orep.Slice)) {
			return Fig6Row{}, fmt.Errorf("%s: dynamic slices diverged on test %d", w.Name, i)
		}
	}
	return row, nil
}

// PrintFig6 renders the Figure 6 table.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintf(w, "Figure 6: normalized dynamic-slicing runtimes (x = runtime / uninstrumented)\n")
	fmt.Fprintf(w, "%-8s %12s %9s %8s | %12s %12s %8s %9s | %9s %9s\n",
		"bench", "Trad.Hybrid", "OptSlice", "speedup", "hyb nodes", "opt nodes", "checks", "rollbacks", "hyb stat", "opt stat")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %11.2fx %8.2fx %7.2fx | %12d %12d %8d %9d | %6d/%s %6d/%s\n",
			r.Name, r.Norm(r.HybridSec), r.Norm(r.OptSec), ratio(r.HybridSec, r.OptSec),
			r.HybridNodes, r.OptNodes, r.CheckEvents, r.Rollbacks,
			r.HybridStatic, r.HybridAT, r.OptStatic, r.OptAT)
	}
}

// Tab2Row is one benchmark's Table 2 measurement.
type Tab2Row struct {
	Name string

	TradAT   core.SliceAnalysisType
	TradSec  float64 // traditional static analysis (points-to + slice)
	OptAT    core.SliceAnalysisType
	OptSec   float64 // optimistic static analysis
	ProfSec  float64
	ProfRuns int

	BreakEvenSec   float64 // vs the traditional hybrid slicer
	DynamicSpeedup float64
}

// Tab2 computes the end-to-end slicing economics.
func Tab2(opts Options) ([]Tab2Row, error) {
	opts = opts.Defaults()
	fig6, err := Fig6(opts)
	if err != nil {
		return nil, err
	}
	byName := map[string]Fig6Row{}
	for _, r := range fig6 {
		byName[r.Name] = r
	}
	env := newEnv(opts)
	return mapOrdered(opts.Parallel, workloads.Slices(), func(_ int, w *workloads.Workload) (Tab2Row, error) {
		s, err := setupSlice(w, env)
		if err != nil {
			return Tab2Row{}, err
		}
		f6 := byName[w.Name]
		row := Tab2Row{
			Name:           w.Name,
			TradAT:         s.hy.AT,
			TradSec:        s.soundSec,
			OptAT:          s.opt.AT,
			OptSec:         s.predSec,
			ProfSec:        s.profileSec,
			ProfRuns:       s.pr.Runs,
			DynamicSpeedup: ratio(f6.HybridSec, f6.OptSec),
		}
		row.BreakEvenSec = breakEven(
			s.profileSec+s.predSec+s.soundSec, // optimistic startup (sound analysis kept for rollback)
			s.soundSec,
			f6.HybridSec/f6.PlainSec, f6.OptSec/f6.PlainSec)
		return row, nil
	})
}

// PrintTab2 renders the Table 2 table.
func PrintTab2(w io.Writer, rows []Tab2Row) {
	fmt.Fprintf(w, "Table 2: OptSlice end-to-end analysis economics\n")
	fmt.Fprintf(w, "%-8s | %4s %10s | %4s %10s %15s | %10s %9s\n",
		"bench", "tAT", "trad(ms)", "oAT", "opt(ms)", "profile(ms/run)", "breakeven", "dyn-spd")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s | %4s %10.2f | %4s %10.2f %10.2f/%4d | %10s %8.2fx\n",
			r.Name, r.TradAT, r.TradSec*1000, r.OptAT, r.OptSec*1000, r.ProfSec*1000, r.ProfRuns,
			fmtBE(r.BreakEvenSec), r.DynamicSpeedup)
	}
}
