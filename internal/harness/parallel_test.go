package harness

import (
	"errors"
	"fmt"
	"testing"

	"oha/internal/artifacts"
)

func TestMapOrderedPreservesOrder(t *testing.T) {
	items := make([]int, 37)
	for i := range items {
		items[i] = i * 10
	}
	for _, workers := range []int{1, 4, 64} {
		got, err := mapOrdered(workers, items, func(i, item int) (int, error) {
			return item + i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*10+i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapOrderedLowestIndexError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	fn := func(i, item int) (int, error) {
		if i == 2 || i == 6 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return item, nil
	}
	for _, workers := range []int{1, 4} {
		_, err := mapOrdered(workers, items, fn)
		if err == nil || err.Error() != "fail 2" {
			t.Errorf("workers=%d: err = %v, want fail 2", workers, err)
		}
	}
}

func TestMapOrderedEmpty(t *testing.T) {
	got, err := mapOrdered(8, nil, func(i, item int) (int, error) {
		return 0, errors.New("must not run")
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map = %v, %v", got, err)
	}
}

// deterministicFig6 strips the wall-clock fields, leaving only the
// columns that must be identical for every pool size.
func deterministicFig6(rows []Fig6Row) []Fig6Row {
	out := make([]Fig6Row, len(rows))
	copy(out, rows)
	for i := range out {
		out[i].PlainSec, out[i].HybridSec, out[i].OptSec = 0, 0, 0
	}
	return out
}

// TestHarnessParallelDeterminism asserts that the experiment pool
// changes only wall-clock readings: every deterministic Figure 6 column
// is identical across pool sizes, with and without a warm artifact
// cache, and rows stay in suite order.
func TestHarnessParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	base := tiny()
	base.Parallel = 1
	seq, err := Fig6(base)
	if err != nil {
		t.Fatal(err)
	}
	want := deterministicFig6(seq)

	cache := artifacts.New("")
	for _, parallel := range []int{2, 8} {
		for pass := 0; pass < 2; pass++ { // second pass: warm cache
			opts := tiny()
			opts.Parallel = parallel
			opts.Cache = cache
			rows, err := Fig6(opts)
			if err != nil {
				t.Fatalf("parallel=%d pass=%d: %v", parallel, pass, err)
			}
			got := deterministicFig6(rows)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("parallel=%d pass=%d: row %d diverged:\n got %+v\nwant %+v",
						parallel, pass, i, got[i], want[i])
				}
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("warm passes never hit the cache: %+v", st)
	}
}

// TestExclusiveTimingStillCorrect runs an experiment with the timing
// semaphore enabled and checks the deterministic columns survive.
func TestExclusiveTimingStillCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	opts := tiny()
	opts.Parallel = 4
	opts.ExclusiveTiming = true
	rows, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	got, want := deterministicFig6(rows), deterministicFig6(seq)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d diverged under exclusive timing", i)
		}
	}
}
