package harness

import (
	"fmt"
	"io"

	"oha/internal/core"
	"oha/internal/invariants"
	"oha/internal/workloads"
)

// SweepPoint is one (profiling effort, outcome) sample for the
// Figure 7 / Figure 8 sweeps.
type SweepPoint struct {
	ProfileRuns int
	ProfileSec  float64
	// MisSpecRate is the fraction of testing executions that violated
	// an invariant (Figure 7).
	MisSpecRate float64
	// SliceSize is the average predicated static slice size over the
	// endpoint set (Figure 8).
	SliceSize float64
}

// SweepRow is one benchmark's profiling sweep.
type SweepRow struct {
	Name   string
	Points []SweepPoint
}

// defaultSweep is the profiling-set size series.
var defaultSweep = []int{1, 2, 4, 8, 16, 32, 64}

// Sweep runs the Figure 7 + Figure 8 profiling sweeps for the slicing
// suite: for growing profiling sets, measure mis-speculation rates on
// the testing set and the resulting predicated static slice sizes.
// Workloads run on the experiment worker pool; the per-run databases of
// successive sweep points overlap, so a warm artifact cache profiles
// each execution exactly once across the whole sweep.
func Sweep(opts Options) ([]SweepRow, error) {
	opts = opts.Defaults()
	env := newEnv(opts)
	return mapOrdered(opts.Parallel, workloads.Slices(), func(_ int, w *workloads.Workload) (SweepRow, error) {
		prog := w.Prog()
		criterion := lastPrint(prog)
		row := SweepRow{Name: w.Name}
		for _, k := range defaultSweep {
			execs := make([]core.Execution, k)
			for i := range execs {
				execs[i] = profileExec(w, i)
			}
			pt := SweepPoint{ProfileRuns: k}
			var db *invariants.DB
			sec, err := env.timed(func() error {
				var err error
				db, err = core.ProfileNWith(prog, execs, opts.Parallel, opts.Cache)
				return err
			})
			if err != nil {
				return SweepRow{}, fmt.Errorf("%s: profiling %d runs: %w", w.Name, k, err)
			}
			pt.ProfileSec = sec
			opt, err := core.NewOptSliceCached(prog, db, criterion, opts.Budget, opts.Cache)
			if err != nil {
				return SweepRow{}, fmt.Errorf("%s: static: %w", w.Name, err)
			}
			pt.SliceSize = float64(opt.Static.Size())
			miss := 0
			trials := opts.TestRuns * 3
			for i := 0; i < trials; i++ {
				rep, err := opt.Run(testExec(w, i), core.RunOptions{})
				if err != nil {
					return SweepRow{}, fmt.Errorf("%s: test run: %w", w.Name, err)
				}
				if rep.RolledBack {
					miss++
				}
			}
			pt.MisSpecRate = float64(miss) / float64(trials)
			row.Points = append(row.Points, pt)
		}
		return row, nil
	})
}

// PrintFig7 renders the mis-speculation-rate series (Figure 7).
func PrintFig7(w io.Writer, rows []SweepRow) {
	fmt.Fprintf(w, "Figure 7: mis-speculation rate vs profiling effort\n")
	fmt.Fprintf(w, "%-8s", "runs")
	for _, k := range defaultSweep {
		fmt.Fprintf(w, " %7d", k)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s", r.Name)
		for _, p := range r.Points {
			fmt.Fprintf(w, " %6.1f%%", 100*p.MisSpecRate)
		}
		fmt.Fprintln(w)
	}
}

// PrintFig8 renders the slice-size series (Figure 8).
func PrintFig8(w io.Writer, rows []SweepRow) {
	fmt.Fprintf(w, "Figure 8: predicated static slice size vs number of profiling runs\n")
	fmt.Fprintf(w, "%-8s", "runs")
	for _, k := range defaultSweep {
		fmt.Fprintf(w, " %7d", k)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s", r.Name)
		for _, p := range r.Points {
			fmt.Fprintf(w, " %7.0f", p.SliceSize)
		}
		fmt.Fprintln(w)
	}
}
