package harness

import "sync"

// mapOrdered evaluates fn over items on a bounded worker pool and
// returns the results in item order, so experiment rows come out in the
// same order as the sequential loops they replace. Errors are captured
// per item; the lowest-index error is the one returned — exactly the
// error a sequential scan would have reported first — so the observable
// outcome is independent of the worker count. workers <= 1 runs inline
// with the sequential early-exit behavior.
func mapOrdered[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, it := range items {
			r, err := fn(i, it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, len(items))
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(i, items[i])
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
