package ctxs

import (
	"errors"
	"testing"

	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/lang"
)

const treeSrc = `
	func leaf() { return 1; }
	func mid() { return leaf(); }
	func rec(n) { if (n) { return rec(n - 1); } return 0; }
	func main() {
		print(mid());
		print(leaf());
		print(rec(3));
	}
`

// callSitesOf returns the call instructions of a function, in order.
func callSitesOf(f *ir.Function) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.IsCallLike() {
				out = append(out, in)
			}
		}
	}
	return out
}

func TestCITreeOneContextPerFunction(t *testing.T) {
	p := lang.MustCompile(treeSrc)
	tr := NewCI(p)
	if tr.Sensitive() {
		t.Fatal("CI tree claims sensitivity")
	}
	main := p.Main()
	mid := p.FuncByName["mid"]
	leaf := p.FuncByName["leaf"]
	sites := callSitesOf(main)

	c1, st, err := tr.Extend(tr.Root(), sites[0], mid)
	if err != nil || st != Extended {
		t.Fatalf("extend: %v %v", st, err)
	}
	// Extending to leaf from two different places gives the same ctx.
	l1, _, err := tr.Extend(c1, callSitesOf(mid)[0], leaf)
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := tr.Extend(tr.Root(), sites[1], leaf)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Error("CI tree cloned a function")
	}
	if len(tr.CtxsOf(leaf)) != 1 {
		t.Errorf("leaf ctxs = %d", len(tr.CtxsOf(leaf)))
	}
	if tr.FnOf(l1) != leaf {
		t.Error("FnOf wrong")
	}
}

func TestCSTreeClonesPerPath(t *testing.T) {
	p := lang.MustCompile(treeSrc)
	tr := NewCS(p, 0, nil)
	main := p.Main()
	mid := p.FuncByName["mid"]
	leaf := p.FuncByName["leaf"]
	sites := callSitesOf(main)

	cMid, _, _ := tr.Extend(tr.Root(), sites[0], mid)
	lViaMid, _, _ := tr.Extend(cMid, callSitesOf(mid)[0], leaf)
	lDirect, _, _ := tr.Extend(tr.Root(), sites[1], leaf)
	if lViaMid == lDirect {
		t.Error("CS tree merged distinct paths")
	}
	if len(tr.CtxsOf(leaf)) != 2 {
		t.Errorf("leaf ctxs = %d, want 2", len(tr.CtxsOf(leaf)))
	}
	// Interning: the same (ctx, site, callee) returns the same clone.
	again, st, _ := tr.Extend(tr.Root(), sites[1], leaf)
	if again != lDirect || st != Extended {
		t.Error("interning failed")
	}
	// Paths.
	if len(tr.Path(lViaMid)) != 2 || len(tr.Path(lDirect)) != 1 {
		t.Errorf("paths: %v %v", tr.Path(lViaMid), tr.Path(lDirect))
	}
}

func TestCSRecursionCollapse(t *testing.T) {
	p := lang.MustCompile(treeSrc)
	tr := NewCS(p, 0, nil)
	main := p.Main()
	rec := p.FuncByName["rec"]
	recSite := callSitesOf(main)[2]
	cRec, _, _ := tr.Extend(tr.Root(), recSite, rec)
	selfSite := callSitesOf(rec)[0]
	again, st, err := tr.Extend(cRec, selfSite, rec)
	if err != nil {
		t.Fatal(err)
	}
	if st != Recursive || again != cRec {
		t.Errorf("recursion not collapsed: %v ctx %d vs %d", st, again, cRec)
	}
}

func TestCSBudget(t *testing.T) {
	p := lang.MustCompile(treeSrc)
	tr := NewCS(p, 2, nil) // main + one clone only
	main := p.Main()
	sites := callSitesOf(main)
	if _, _, err := tr.Extend(tr.Root(), sites[0], p.FuncByName["mid"]); err != nil {
		t.Fatal(err)
	}
	_, _, err := tr.Extend(tr.Root(), sites[1], p.FuncByName["leaf"])
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want budget", err)
	}
}

func TestCSContextRestriction(t *testing.T) {
	p := lang.MustCompile(treeSrc)
	main := p.Main()
	mid := p.FuncByName["mid"]
	leaf := p.FuncByName["leaf"]
	sites := callSitesOf(main)

	allowed := invariants.NewContextSet()
	allowed.Add([]int{sites[0].ID}) // only main->mid observed
	tr := NewCS(p, 0, allowed.Clone())

	if _, st, _ := tr.Extend(tr.Root(), sites[0], mid); st != Extended {
		t.Fatalf("observed path pruned: %v", st)
	}
	_, st, _ := tr.Extend(tr.Root(), sites[1], leaf)
	if st != Pruned {
		t.Fatalf("unobserved path not pruned: %v", st)
	}
}
