// Package ctxs manages calling-context trees for the context-sensitive
// static analyses.
//
// As §3 of the paper describes, a context-sensitive data-flow analysis
// builds its definition-use graph bottom-up from main, cloning each
// function's local DUG once per distinct call stack, with recursive
// calls connected back to the existing clone instead of cloning
// further. A context-insensitive analysis keeps a single copy of each
// function's local DUG.
//
// Both disciplines are expressed here as a Tree: analyses ask the tree
// to Extend a context through a call edge and receive either an
// existing or a fresh context id. Three behaviours matter:
//
//   - CI trees hand every function exactly one context, so "cloning"
//     collapses to the context-insensitive analysis.
//   - CS trees clone per acyclic call path, collapse recursion, and
//     fail with ErrBudget when the clone count exceeds a budget —
//     modelling the paper's observation that sound context-sensitive
//     analysis "fails to scale" on large programs (Table 2).
//   - CS trees built with an observed-context set (the likely
//     unused-call-contexts invariant, §5.2.3) refuse to clone
//     unobserved paths: Extend reports Pruned, the predicated
//     analysis drops that edge, and the runtime check compensates.
package ctxs

import (
	"errors"

	"oha/internal/invariants"
	"oha/internal/ir"
)

// ID identifies a context (a clone of one function). IDs are dense,
// starting at 0 for main's root context.
type ID int

// ExtendStatus reports the outcome of extending a context.
type ExtendStatus uint8

// Extend outcomes.
const (
	// Extended: the returned context is the (new or interned) clone of
	// the callee for this path.
	Extended ExtendStatus = iota
	// Recursive: the callee is already on the path; the returned
	// context is the existing ancestor clone (recursion collapsed).
	Recursive
	// Pruned: the path is not in the observed-context set; the
	// predicated analysis must drop this call edge.
	Pruned
)

// ErrBudget is returned when a context-sensitive tree exceeds its
// clone budget — the analysis "fails to run" on this program.
var ErrBudget = errors.New("ctxs: context budget exceeded")

type node struct {
	parent ID
	fn     int   // function ID of this clone
	site   int   // call-site instr ID that created it (-1 for roots)
	path   []int // acyclic call-site path from the root
}

// Tree is a calling-context tree shared by the CS points-to analysis
// and the CS slicer. The zero value is not usable; see NewCI / NewCS.
type Tree struct {
	prog      *ir.Program
	sensitive bool
	budget    int
	allowed   *invariants.ContextSet // nil: all contexts allowed

	nodes  []node
	intern map[[3]int]ID // (parent, site, callee fn) -> child (CS)
	fnCtx  []ID          // function -> its single context (CI); -1 unset
	byFn   [][]ID        // function -> contexts
}

// NewCI returns a context-insensitive tree: every function gets
// exactly one context.
func NewCI(prog *ir.Program) *Tree {
	t := &Tree{prog: prog, sensitive: false, intern: map[[3]int]ID{}}
	t.fnCtx = make([]ID, len(prog.Funcs))
	for i := range t.fnCtx {
		t.fnCtx[i] = -1
	}
	t.byFn = make([][]ID, len(prog.Funcs))
	t.root(prog.Main())
	return t
}

// NewCS returns a context-sensitive tree cloning per acyclic call
// path. budget bounds the total number of clones (<=0 means a default
// of 4096). allowed, when non-nil, restricts cloning to the observed
// contexts of the likely-unused-call-contexts invariant.
func NewCS(prog *ir.Program, budget int, allowed *invariants.ContextSet) *Tree {
	if budget <= 0 {
		budget = 4096
	}
	t := &Tree{prog: prog, sensitive: true, budget: budget, allowed: allowed, intern: map[[3]int]ID{}}
	t.fnCtx = make([]ID, len(prog.Funcs))
	for i := range t.fnCtx {
		t.fnCtx[i] = -1
	}
	t.byFn = make([][]ID, len(prog.Funcs))
	t.root(prog.Main())
	return t
}

// root creates main's context.
func (t *Tree) root(main *ir.Function) ID {
	id := ID(len(t.nodes))
	t.nodes = append(t.nodes, node{parent: -1, fn: main.ID, site: -1})
	t.byFn[main.ID] = append(t.byFn[main.ID], id)
	if !t.sensitive {
		t.fnCtx[main.ID] = id
	}
	return id
}

// Root returns main's context (always 0).
func (t *Tree) Root() ID { return 0 }

// Sensitive reports whether the tree distinguishes call paths.
func (t *Tree) Sensitive() bool { return t.sensitive }

// FnOf returns the function a context is a clone of.
func (t *Tree) FnOf(c ID) *ir.Function { return t.prog.Funcs[t.nodes[c].fn] }

// Path returns the acyclic call-site path of a context (empty for
// roots; shared storage — do not mutate).
func (t *Tree) Path(c ID) []int { return t.nodes[c].path }

// Len returns the number of contexts created so far.
func (t *Tree) Len() int { return len(t.nodes) }

// CtxsOf returns all contexts of a function.
func (t *Tree) CtxsOf(fn *ir.Function) []ID { return t.byFn[fn.ID] }

// Clone returns a deep copy of the tree. Context IDs are preserved, so
// analysis state keyed by ID stays valid against the clone; path slices
// are shared (Extend never mutates an existing path). An incremental
// re-analysis clones the tree before extending it, leaving the original
// — typically owned by a cached Result — untouched.
func (t *Tree) Clone() *Tree {
	c := &Tree{prog: t.prog, sensitive: t.sensitive, budget: t.budget, allowed: t.allowed}
	c.nodes = append([]node(nil), t.nodes...)
	c.intern = make(map[[3]int]ID, len(t.intern))
	for k, v := range t.intern {
		c.intern[k] = v
	}
	c.fnCtx = append([]ID(nil), t.fnCtx...)
	c.byFn = make([][]ID, len(t.byFn))
	for i, s := range t.byFn {
		c.byFn[i] = append([]ID(nil), s...)
	}
	return c
}

// Extend walks a call edge: from context c, call site `site` invoking
// callee. For CI trees it returns the callee's single context. For CS
// trees it returns the interned or fresh clone, collapses recursion,
// honours the observed-context restriction, and enforces the budget.
//
// Spawn sites extend contexts exactly like call sites, matching the
// profiler.
func (t *Tree) Extend(c ID, site *ir.Instr, callee *ir.Function) (ID, ExtendStatus, error) {
	if !t.sensitive {
		if t.fnCtx[callee.ID] == -1 {
			id := ID(len(t.nodes))
			t.nodes = append(t.nodes, node{parent: -1, fn: callee.ID, site: -1})
			t.fnCtx[callee.ID] = id
			t.byFn[callee.ID] = append(t.byFn[callee.ID], id)
		}
		return t.fnCtx[callee.ID], Extended, nil
	}
	// Recursion: if callee is already on the path, link back to the
	// nearest ancestor clone of callee.
	for cur := c; cur != -1; cur = t.nodes[cur].parent {
		if t.nodes[cur].fn == callee.ID {
			return cur, Recursive, nil
		}
	}
	key := [3]int{int(c), site.ID, callee.ID}
	if id, ok := t.intern[key]; ok {
		return id, Extended, nil
	}
	path := append(append([]int(nil), t.nodes[c].path...), site.ID)
	if t.allowed != nil && !t.allowed.Has(path) {
		return -1, Pruned, nil
	}
	if len(t.nodes) >= t.budget {
		return -1, Extended, ErrBudget
	}
	id := ID(len(t.nodes))
	t.nodes = append(t.nodes, node{parent: c, fn: callee.ID, site: site.ID, path: path})
	t.intern[key] = id
	t.byFn[callee.ID] = append(t.byFn[callee.ID], id)
	return id, Extended, nil
}

// ExportCI returns the portable image of a context-insensitive tree:
// the function ID of each node in creation order. Context IDs are
// positional, so ImportCI over the same program rebuilds a tree whose
// IDs match exactly — which is what lets solver state keyed by context
// ID survive serialization. Sensitive trees have no stable portable
// form (their identity includes interned call paths and the live
// budget) and are rejected.
func (t *Tree) ExportCI() ([]int, error) {
	if t.sensitive {
		return nil, errors.New("ctxs: context-sensitive trees are not portable")
	}
	fns := make([]int, len(t.nodes))
	for i, n := range t.nodes {
		fns[i] = n.fn
	}
	return fns, nil
}

// ImportCI rebuilds a context-insensitive tree from an ExportCI image.
// fns[0] must be main's function ID and every entry must name a
// distinct in-range function, so a corrupted image fails here rather
// than producing out-of-range context IDs downstream.
func ImportCI(prog *ir.Program, fns []int) (*Tree, error) {
	main := prog.Main()
	if main == nil {
		return nil, errors.New("ctxs: program has no main")
	}
	if len(fns) == 0 || fns[0] != main.ID {
		return nil, errors.New("ctxs: import does not start at main")
	}
	t := NewCI(prog)
	for _, fid := range fns[1:] {
		if fid < 0 || fid >= len(prog.Funcs) {
			return nil, errors.New("ctxs: import names an out-of-range function")
		}
		if t.fnCtx[fid] != -1 {
			return nil, errors.New("ctxs: import repeats a function")
		}
		id := ID(len(t.nodes))
		t.nodes = append(t.nodes, node{parent: -1, fn: fid, site: -1})
		t.fnCtx[fid] = id
		t.byFn[fid] = append(t.byFn[fid], id)
	}
	return t, nil
}
