package ohc

import (
	"errors"
	"path/filepath"
	"testing"

	"oha/internal/interp"
	"oha/internal/lang"
)

const src = `func main() { var i = 0; var s = 0; while (i < 5) { s = s + i; i = i + 1; } print(s); }`

func TestContainerRoundTrip(t *testing.T) {
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	code := interp.Compile(prog, interp.Masks{})
	path := filepath.Join(t.TempDir(), "prog.ohc")
	if err := WriteFile(path, src, code); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Source != src {
		t.Error("source diverged")
	}
	if f.Code.ConfigDigest() != code.ConfigDigest() {
		t.Error("config digest diverged")
	}
	res, err := interp.Run(interp.Config{Prog: f.Prog, Engine: interp.EngineCompiled, Code: f.Code})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 10 {
		t.Fatalf("output = %v, want [10]", res.Output)
	}
}

func TestContainerRejects(t *testing.T) {
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(src, interp.Compile(prog, interp.Masks{}))
	if _, err := Decode(data[:len(data)/2]); !errors.Is(err, ErrFormat) && !errors.Is(err, interp.ErrImage) {
		t.Fatalf("truncated: err = %v", err)
	}
	if _, err := Decode([]byte("not an ohc file at all")); !errors.Is(err, ErrFormat) {
		t.Fatalf("garbage: err = %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[6] ^= 0xff
	if _, err := Decode(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("version skew: err = %v", err)
	}
	// Source/image mismatch: splice another program's image in.
	other, err := lang.Compile(`func main() { print(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	spliced := Encode(src, interp.Compile(other, interp.Masks{}))
	if _, err := Decode(spliced); !errors.Is(err, interp.ErrImage) {
		t.Fatalf("spliced image: err = %v", err)
	}
}
