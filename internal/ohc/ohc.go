// Package ohc reads and writes .ohc files: the on-disk container for
// ahead-of-time compiled MiniLang programs (`oha compile -o`). A file
// carries the program source alongside its serialized compiled image
// (interp.EncodeImage), because an image is only executable against
// the exact program it was compiled from: the reader recompiles the
// embedded source and the image's program digest guards the rebind.
// Tools that load a .ohc therefore get the program IR, the source (for
// the step debugger's line view), and the zero-compile image in one
// artifact.
//
// The artifact cache's disk tier stores bare images (the cache key
// pins the program); this container format is for files users pass
// around.
package ohc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/lang"
)

// magic identifies a .ohc container; version gates layout changes.
var magic = [6]byte{'O', 'H', 'C', 'P', 'K', 'G'}

const version uint16 = 1

// ErrFormat wraps every container-level decode failure.
var ErrFormat = errors.New("ohc: bad container")

// File is a decoded .ohc container.
type File struct {
	Source string
	Prog   *ir.Program
	Code   *interp.Code
}

// Encode serializes source plus its compiled image into the container
// format.
func Encode(source string, code *interp.Code) []byte {
	img := code.EncodeImage()
	buf := make([]byte, 0, len(magic)+2+8+len(source)+8+len(img))
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(source)))
	buf = append(buf, source...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(img)))
	buf = append(buf, img...)
	return buf
}

// Decode parses a container, recompiles the embedded source, and
// rebinds the image to it (validated by interp.DecodeImage, including
// the program-digest guard).
func Decode(data []byte) (*File, error) {
	if len(data) < len(magic)+2 || [6]byte(data[:6]) != magic {
		return nil, fmt.Errorf("%w: not an ohc file", ErrFormat)
	}
	if v := binary.LittleEndian.Uint16(data[6:]); v != version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrFormat, v, version)
	}
	rest := data[8:]
	src, rest, err := lengthPrefixed(rest)
	if err != nil {
		return nil, err
	}
	img, rest, err := lengthPrefixed(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(rest))
	}
	prog, err := lang.Compile(string(src))
	if err != nil {
		return nil, fmt.Errorf("%w: embedded source: %v", ErrFormat, err)
	}
	code, err := interp.DecodeImage(prog, img)
	if err != nil {
		return nil, err
	}
	return &File{Source: string(src), Prog: prog, Code: code}, nil
}

func lengthPrefixed(b []byte) (payload, rest []byte, err error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("%w: truncated", ErrFormat)
	}
	n := binary.LittleEndian.Uint64(b)
	if n > uint64(len(b)-8) {
		return nil, nil, fmt.Errorf("%w: truncated payload", ErrFormat)
	}
	return b[8 : 8+n], b[8+n:], nil
}

// WriteFile writes the container for (source, code) to path.
func WriteFile(path, source string, code *interp.Code) error {
	return os.WriteFile(path, Encode(source, code), 0o644)
}

// ReadFile reads and decodes a container from path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
