package vc

import "testing"

// benchVC builds a clock with n entries, every one non-zero so Equal
// and Leq cannot bail out early on zeros.
func benchVC(n int, bump uint32) *VC {
	v := New()
	for t := 0; t < n; t++ {
		v.Set(TID(t), uint32(t)+1+bump)
	}
	return v
}

func BenchmarkLeqEpoch(b *testing.B) {
	v := benchVC(64, 0)
	e := MakeEpoch(17, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !v.LeqEpoch(e) {
			b.Fatal("epoch should be covered")
		}
	}
}

func BenchmarkJoinWith(b *testing.B) {
	v := benchVC(64, 0)
	u := benchVC(64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.JoinWith(u)
	}
}

func BenchmarkEqual(b *testing.B) {
	v := benchVC(64, 0)
	u := v.Copy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !v.Equal(u) {
			b.Fatal("clocks should be equal")
		}
	}
}

// BenchmarkEqualRagged exercises the unequal-length path: the longer
// clock's tail is all zeros, so the clocks are still equal.
func BenchmarkEqualRagged(b *testing.B) {
	v := benchVC(32, 0)
	u := v.Copy()
	u.Set(63, 1)
	u.Set(63, 0) // grow, then zero the tail entry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !v.Equal(u) {
			b.Fatal("clocks should be equal")
		}
	}
}

// BenchmarkVCGrowTall builds one clock entry-by-entry up to 256
// threads — the spawn-heavy shape that grows the backing array. With
// capacity doubling this reallocates O(log n) times instead of once
// per new high thread id.
func BenchmarkVCGrowTall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := New()
		for t := TID(0); t < 256; t++ {
			v.Set(t, uint32(t)+1)
		}
	}
}

// BenchmarkVCFreshFill allocates a new clock and fills 64 entries per
// iteration — what the race detector's READ_SHARED inflation cost
// before pooling.
func BenchmarkVCFreshFill(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := New()
		for t := TID(0); t < 64; t++ {
			v.Set(t, uint32(t)+1)
		}
	}
}

// BenchmarkVCPooledRefill is BenchmarkVCFreshFill on a recycled clock:
// Reset keeps the backing array, so the refill allocates nothing.
// This is the detector's rvcPool cycle (collapse on write, reuse on
// the next inflation).
func BenchmarkVCPooledRefill(b *testing.B) {
	v := benchVC(64, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Reset()
		for t := TID(0); t < 64; t++ {
			v.Set(t, uint32(t)+1)
		}
	}
}
