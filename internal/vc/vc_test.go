package vc

import (
	"testing"
	"testing/quick"
)

func TestEpochPacking(t *testing.T) {
	e := MakeEpoch(7, 123)
	if e.TID() != 7 || e.Clock() != 123 {
		t.Fatalf("epoch unpack: tid=%d clock=%d", e.TID(), e.Clock())
	}
	if e.String() != "123@7" {
		t.Errorf("String = %q", e.String())
	}
	if NoEpoch.String() != "⊥" || ReadShared.String() != "SHARED" {
		t.Errorf("sentinel strings wrong")
	}
}

func TestGetSetTick(t *testing.T) {
	v := New()
	if v.Get(5) != 0 {
		t.Fatal("unset entry nonzero")
	}
	v.Set(2, 9)
	if v.Get(2) != 9 {
		t.Fatal("Set/Get mismatch")
	}
	if got := v.Tick(2); got != 10 {
		t.Fatalf("Tick = %d, want 10", got)
	}
	if got := v.Tick(4); got != 1 {
		t.Fatalf("Tick of fresh = %d, want 1", got)
	}
	if v.Epoch(2) != MakeEpoch(2, 10) {
		t.Fatal("Epoch mismatch")
	}
}

func TestJoinLeq(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 3)
	a.Set(1, 1)
	b.Set(1, 5)
	a.JoinWith(b)
	if a.Get(0) != 3 || a.Get(1) != 5 {
		t.Fatalf("join wrong: %v", a)
	}
	if !b.Leq(a) {
		t.Error("b !<= join(a,b)")
	}
	if a.Leq(b) {
		t.Error("join(a,b) <= b despite extra entry")
	}
	if !a.LeqEpoch(MakeEpoch(1, 5)) || a.LeqEpoch(MakeEpoch(1, 6)) {
		t.Error("LeqEpoch boundary wrong")
	}
}

func TestCopyAssignIndependence(t *testing.T) {
	a := New()
	a.Set(0, 1)
	c := a.Copy()
	c.Set(0, 99)
	if a.Get(0) != 1 {
		t.Fatal("Copy shares storage")
	}
	d := New()
	d.Set(3, 7)
	d.Assign(a)
	if d.Get(0) != 1 || d.Get(3) != 0 {
		t.Fatalf("Assign wrong: %v", d)
	}
}

func TestString(t *testing.T) {
	v := New()
	v.Set(0, 2)
	v.Set(2, 4)
	if got := v.String(); got != "[0:2 2:4]" {
		t.Errorf("String = %q", got)
	}
}

// fromSlice builds a VC from a short slice of clock values.
func fromSlice(xs []uint8) *VC {
	v := New()
	for i, x := range xs {
		if i >= 8 {
			break
		}
		v.Set(TID(i), uint32(x))
	}
	return v
}

// Lattice laws for vector clocks, via testing/quick.
func TestQuickLatticeLaws(t *testing.T) {
	join := func(a, b *VC) *VC {
		c := a.Copy()
		c.JoinWith(b)
		return c
	}
	commut := func(xs, ys []uint8) bool {
		a, b := fromSlice(xs), fromSlice(ys)
		return join(a, b).Equal(join(b, a))
	}
	if err := quick.Check(commut, nil); err != nil {
		t.Error("commutativity:", err)
	}
	assoc := func(xs, ys, zs []uint8) bool {
		a, b, c := fromSlice(xs), fromSlice(ys), fromSlice(zs)
		return join(join(a, b), c).Equal(join(a, join(b, c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
	idem := func(xs []uint8) bool {
		a := fromSlice(xs)
		return join(a, a).Equal(a)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Error("idempotence:", err)
	}
	upperBound := func(xs, ys []uint8) bool {
		a, b := fromSlice(xs), fromSlice(ys)
		j := join(a, b)
		return a.Leq(j) && b.Leq(j)
	}
	if err := quick.Check(upperBound, nil); err != nil {
		t.Error("upper bound:", err)
	}
	// Leq is a partial order: reflexive and antisymmetric-on-Equal.
	refl := func(xs []uint8) bool { return fromSlice(xs).Leq(fromSlice(xs)) }
	if err := quick.Check(refl, nil); err != nil {
		t.Error("reflexivity:", err)
	}
	antisym := func(xs, ys []uint8) bool {
		a, b := fromSlice(xs), fromSlice(ys)
		if a.Leq(b) && b.Leq(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error("antisymmetry:", err)
	}
	// Epoch fast path agrees with the general Leq on single-entry VCs.
	epochAgree := func(tid uint8, clock uint8, xs []uint8) bool {
		tt := TID(tid % 8)
		v := fromSlice(xs)
		e := MakeEpoch(tt, uint32(clock))
		single := New()
		single.Set(tt, uint32(clock))
		return v.LeqEpoch(e) == single.Leq(v)
	}
	if err := quick.Check(epochAgree, nil); err != nil {
		t.Error("epoch fast path:", err)
	}
}
