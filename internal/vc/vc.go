// Package vc implements vector clocks and epochs as used by the
// FastTrack dynamic race detector (Flanagan & Freund, PLDI 2009).
//
// A vector clock VC maps thread ids to logical clock values. An Epoch
// c@t packs a single (clock, thread) pair into one word; FastTrack's
// key optimization is representing most variable read/write metadata
// as an epoch rather than a full vector clock.
package vc

import (
	"fmt"
	"strings"
)

// TID identifies a thread. Thread ids are small dense integers
// assigned by the scheduler in spawn order.
type TID int32

// Epoch packs a clock value and thread id into one comparable word:
// the low 32 bits are the clock, the high bits the thread id.
type Epoch uint64

// NoEpoch is the epoch 0@0, used as "never accessed". Thread ids start
// at 0 with clock 1, so a real access never produces NoEpoch.
const NoEpoch Epoch = 0

// ReadShared is a sentinel epoch meaning "read metadata has inflated
// to a full vector clock" (FastTrack's READ_SHARED state).
const ReadShared Epoch = ^Epoch(0)

// MakeEpoch returns the epoch clock@tid.
func MakeEpoch(tid TID, clock uint32) Epoch {
	return Epoch(uint64(tid)<<32 | uint64(clock))
}

// TID returns the thread component of e.
func (e Epoch) TID() TID { return TID(e >> 32) }

// Clock returns the clock component of e.
func (e Epoch) Clock() uint32 { return uint32(e) }

// String renders "c@t".
func (e Epoch) String() string {
	switch e {
	case NoEpoch:
		return "⊥"
	case ReadShared:
		return "SHARED"
	}
	return fmt.Sprintf("%d@%d", e.Clock(), e.TID())
}

// VC is a vector clock. The zero value is the bottom clock (all
// entries zero). VCs grow on demand; missing entries are zero.
type VC struct {
	clocks []uint32
}

// New returns an empty (bottom) vector clock.
func New() *VC { return &VC{} }

// Get returns the clock for thread t (zero if never set).
func (v *VC) Get(t TID) uint32 {
	if int(t) < len(v.clocks) {
		return v.clocks[t]
	}
	return 0
}

func (v *VC) grow(t TID) {
	if int(t) < len(v.clocks) {
		return
	}
	if int(t) < cap(v.clocks) {
		// Extend in place. The region between the old and new length
		// must be zeroed explicitly: Assign and Reset shrink the slice
		// in place, so capacity may hold stale clock values.
		old := len(v.clocks)
		v.clocks = v.clocks[:t+1]
		for i := old; i < len(v.clocks); i++ {
			v.clocks[i] = 0
		}
		return
	}
	// Double capacity so a clock touched by successively higher thread
	// ids (spawn-heavy runs) reallocates O(log n) times, not O(n).
	nc := 2 * cap(v.clocks)
	if nc < int(t)+1 {
		nc = int(t) + 1
	}
	grown := make([]uint32, int(t)+1, nc)
	copy(grown, v.clocks)
	v.clocks = grown
}

// Set assigns the clock for thread t.
func (v *VC) Set(t TID, c uint32) {
	v.grow(t)
	v.clocks[t] = c
}

// Tick increments thread t's own entry and returns the new value.
func (v *VC) Tick(t TID) uint32 {
	v.grow(t)
	v.clocks[t]++
	return v.clocks[t]
}

// Epoch returns thread t's current epoch in this clock: Get(t)@t.
func (v *VC) Epoch(t TID) Epoch { return MakeEpoch(t, v.Get(t)) }

// JoinWith sets v to the pointwise maximum of v and u.
func (v *VC) JoinWith(u *VC) {
	if u == nil {
		return
	}
	if len(u.clocks) > len(v.clocks) {
		v.grow(TID(len(u.clocks) - 1))
	}
	for i, c := range u.clocks {
		if c > v.clocks[i] {
			v.clocks[i] = c
		}
	}
}

// Copy returns an independent copy of v.
func (v *VC) Copy() *VC {
	c := make([]uint32, len(v.clocks))
	copy(c, v.clocks)
	return &VC{clocks: c}
}

// Assign overwrites v with the contents of u.
func (v *VC) Assign(u *VC) {
	if len(u.clocks) > cap(v.clocks) {
		v.clocks = make([]uint32, len(u.clocks))
	} else {
		v.clocks = v.clocks[:len(u.clocks)]
	}
	copy(v.clocks, u.clocks)
}

// Reset shrinks v to the bottom clock in place, keeping its backing
// array for reuse (pooled read-share clocks in the race detector).
func (v *VC) Reset() {
	v.clocks = v.clocks[:0]
}

// LeqEpoch reports whether epoch e happens-before-or-equals v, i.e.
// e.Clock() <= v.Get(e.TID()). This is FastTrack's O(1) fast path.
func (v *VC) LeqEpoch(e Epoch) bool {
	return e.Clock() <= v.Get(e.TID())
}

// Leq reports whether v <= u pointwise (v happens-before-or-equals u).
func (v *VC) Leq(u *VC) bool {
	for i, c := range v.clocks {
		if c == 0 {
			continue
		}
		var uc uint32
		if i < len(u.clocks) {
			uc = u.clocks[i]
		}
		if c > uc {
			return false
		}
	}
	return true
}

// Equal reports pointwise equality in a single pass: the common prefix
// must match entry-for-entry and any length difference must be all
// zeros (missing entries are zero by definition).
func (v *VC) Equal(u *VC) bool {
	a, b := v.clocks, u.clocks
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	for _, c := range a[n:] {
		if c != 0 {
			return false
		}
	}
	for _, c := range b[n:] {
		if c != 0 {
			return false
		}
	}
	return true
}

// Size returns the number of entries physically stored.
func (v *VC) Size() int { return len(v.clocks) }

// String renders "[t0:c0 t1:c1 ...]" omitting zero entries.
func (v *VC) String() string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for i, c := range v.clocks {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", i, c)
	}
	b.WriteByte(']')
	return b.String()
}
