// Package progen generates random — but well-formed, terminating, and
// trap-free — MiniLang programs for property-based testing of the
// whole analysis stack.
//
// The headline soundness property of optimistic hybrid analysis is
// universally quantified ("as precise and sound as traditional dynamic
// analysis" — for every program and execution), so the test suite
// checks it on randomly generated programs, not just the curated
// workloads: for any generated program, any inputs, and any schedule,
// OptFT must report exactly FastTrack's races and OptSlice must
// compute exactly full Giri's dynamic slice — whether or not
// speculation succeeds.
//
// Generated programs exercise: global scalars and arrays, heap
// pointers, bounded loops, nested conditionals, direct and
// table-indirect calls, spawn/join (unrolled and in loops), and
// lock-guarded regions. They terminate (loops are counter-bounded) and
// never trap (array indexes are masked non-negative, locks are
// non-nested and function-local, only valid thread handles are
// joined). They may well contain genuine data races — the properties
// under test must hold regardless.
package progen

import (
	"fmt"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	// Funcs is the number of leaf functions (also table entries).
	Funcs int
	// Workers is the number of worker functions main may spawn.
	Workers int
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// MaxStmts bounds statements per block.
	MaxStmts int
}

// DefaultConfig returns moderate bounds.
func DefaultConfig() Config {
	return Config{Funcs: 4, Workers: 2, MaxDepth: 3, MaxStmts: 5}
}

// rng is a splitmix64 generator (deterministic, dependency-free).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(xs []string) string { return xs[r.intn(len(xs))] }

// gen holds generation state.
type gen struct {
	r   *rng
	cfg Config
	b   strings.Builder

	globals []string // scalar globals
	locks   []string
	indent  int

	// per-function state
	locals  []string
	nextVar int // monotonic name counter (names are never reused)
	inLock  bool
	fnNames []string // leaf functions callable from anywhere
}

// Generate produces the source of one random program.
func Generate(seed uint64, cfg Config) string {
	if cfg.Funcs <= 0 {
		cfg = DefaultConfig()
	}
	g := &gen{r: &rng{s: seed*2654435761 + 1}, cfg: cfg}
	return g.program()
}

func (g *gen) w(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) program() string {
	nGlob := 3 + g.r.intn(3)
	for i := 0; i < nGlob; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		g.w("global %s = %d;", name, g.r.intn(20))
	}
	g.w("global arr[8];")
	nLocks := 1 + g.r.intn(2)
	for i := 0; i < nLocks; i++ {
		name := fmt.Sprintf("lk%d", i)
		g.locks = append(g.locks, name)
		g.w("global %s = 0;", name)
	}
	g.w("global ftab[4];")
	g.w("")

	for i := 0; i < g.cfg.Funcs; i++ {
		name := fmt.Sprintf("f%d", i)
		g.fnNames = append(g.fnNames, name)
	}
	for i := 0; i < g.cfg.Funcs; i++ {
		g.leafFunc(g.fnNames[i])
	}
	var workers []string
	for i := 0; i < g.cfg.Workers; i++ {
		name := fmt.Sprintf("w%d", i)
		workers = append(workers, name)
		g.workerFunc(name)
	}
	g.mainFunc(workers)
	return g.b.String()
}

// leafFunc emits a call-free function of one parameter.
func (g *gen) leafFunc(name string) {
	g.locals = []string{"x"}
	g.nextVar = 0
	g.w("func %s(x) {", name)
	g.indent++
	n := 1 + g.r.intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(1, false, false)
	}
	g.w("return %s;", g.expr(2))
	g.indent--
	g.w("}")
	g.w("")
}

// workerFunc emits a function that computes, calls leaves, and uses
// locks — the body of spawned threads.
func (g *gen) workerFunc(name string) {
	g.locals = []string{"x"}
	g.nextVar = 0
	g.w("func %s(x) {", name)
	g.indent++
	n := 2 + g.r.intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(g.cfg.MaxDepth, true, true)
	}
	g.indent--
	g.w("}")
	g.w("")
}

func (g *gen) mainFunc(workers []string) {
	g.locals = nil
	g.nextVar = 0
	g.w("func main() {")
	g.indent++
	// Table initialization (every slot, before any call or spawn).
	for i := 0; i < 4; i++ {
		g.w("ftab[%d] = %s;", i, g.fnNames[g.r.intn(len(g.fnNames))])
	}
	// Seed globals from inputs.
	for i, glob := range g.globals {
		if g.r.intn(2) == 0 {
			g.w("%s = input(%d);", glob, i)
		}
	}
	// Some sequential computation.
	for i := 0; i < 2+g.r.intn(3); i++ {
		g.stmt(g.cfg.MaxDepth, true, true)
	}
	// Threads: unrolled singleton spawns and possibly a spawn loop.
	if len(workers) > 0 {
		for i, w := range workers {
			g.w("var t%d = spawn %s(%s);", i, w, g.expr(1))
			g.locals = append(g.locals, fmt.Sprintf("t%d", i))
		}
		if g.r.intn(2) == 0 {
			g.w("var li = 0;")
			g.w("var lt = 0;")
			g.w("while (li < %d) {", 1+g.r.intn(3))
			g.indent++
			g.w("lt = spawn %s(li);", workers[g.r.intn(len(workers))])
			g.w("join(lt);")
			g.w("li = li + 1;")
			g.indent--
			g.w("}")
		}
		for i := range workers {
			g.w("join(t%d);", i)
		}
	}
	// Observable results.
	for _, glob := range g.globals {
		g.w("print(%s);", glob)
	}
	g.w("print(arr[%d]);", g.r.intn(8))
	g.indent--
	g.w("}")
}

// stmt emits one random statement. depth bounds nesting; calls/locks
// gate whether call and lock statements may appear (leaves get
// neither; lock bodies must not nest locks).
func (g *gen) stmt(depth int, calls, locksOK bool) {
	choices := 6
	if depth <= 0 {
		choices = 3 // only simple statements
	}
	switch g.r.intn(choices) {
	case 0: // global assignment
		g.w("%s = %s;", g.r.pick(g.globals), g.expr(2))
	case 1: // array store (masked non-negative index)
		g.w("arr[(%s) & 7] = %s;", g.expr(1), g.expr(2))
	case 2: // local declaration or call
		// Initializer expressions must be generated before the new
		// local is registered (a declaration cannot reference itself).
		if calls && g.r.intn(2) == 0 {
			if g.r.intn(2) == 0 {
				init := fmt.Sprintf("%s(%s)", g.r.pick(g.fnNames), g.expr(1))
				g.w("var %s = %s;", g.newLocal(), init)
			} else {
				slot := g.expr(1)
				h := g.newLocal()
				g.w("var %s = ftab[(%s) & 3];", h, slot)
				arg := g.expr(1)
				g.w("var %s = %s(%s);", g.newLocal(), h, arg)
			}
		} else {
			init := g.expr(2)
			g.w("var %s = %s;", g.newLocal(), init)
		}
	case 3: // if/else
		g.w("if (%s) {", g.expr(2))
		g.inBlock(func() { g.stmt(depth-1, calls, locksOK) })
		if g.r.intn(2) == 0 {
			g.w("} else {")
			g.inBlock(func() { g.stmt(depth-1, calls, locksOK) })
		}
		g.w("}")
	case 4: // bounded loop
		i := g.newLocal()
		g.w("var %s = 0;", i)
		g.w("while (%s < %d) {", i, 2+g.r.intn(6))
		g.inBlock(func() {
			g.stmt(depth-1, calls, locksOK)
			g.w("%s = %s + 1;", i, i)
		})
		g.w("}")
	case 5: // locked region (never nested)
		if !locksOK || g.inLock {
			g.w("%s = %s;", g.r.pick(g.globals), g.expr(2))
			return
		}
		lk := g.r.pick(g.locks)
		g.w("lock(&%s);", lk)
		// A lock region is NOT a lexical scope in MiniLang: indent for
		// readability but keep declared locals visible.
		g.indent++
		g.inLock = true
		g.stmt(depth-1, calls, false)
		g.inLock = false
		g.indent--
		g.w("unlock(&%s);", lk)
	}
}

// inBlock emits body one indent deeper with lexical local scoping:
// locals declared inside are not visible afterwards.
func (g *gen) inBlock(body func()) {
	g.indent++
	save := len(g.locals)
	body()
	g.locals = g.locals[:save]
	g.indent--
}

func (g *gen) newLocal() string {
	v := fmt.Sprintf("v%d", g.nextVar)
	g.nextVar++
	g.locals = append(g.locals, v)
	return v
}

var binOps = []string{"+", "-", "*", "/", "%", "^", "&", "|"}

// expr emits a random side-effect-free expression.
func (g *gen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.r.intn(4) {
	case 0:
		return g.atom()
	case 1:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), g.r.pick(binOps), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("arr[(%s) & 7]", g.expr(depth-1))
	default:
		cmp := []string{"<", "<=", "==", "!="}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), g.r.pick(cmp), g.expr(depth-1))
	}
}

func (g *gen) atom() string {
	switch g.r.intn(4) {
	case 0:
		return fmt.Sprintf("%d", g.r.intn(64))
	case 1:
		return g.r.pick(g.globals)
	case 2:
		return fmt.Sprintf("input(%d)", g.r.intn(8))
	default:
		if len(g.locals) == 0 {
			return g.r.pick(g.globals)
		}
		return g.r.pick(g.locals)
	}
}
