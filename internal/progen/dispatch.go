package progen

import "fmt"

// DispatchConfig bounds a dispatch-heavy generated program (see
// GenerateDispatch).
type DispatchConfig struct {
	// Funcs is the number of leaf functions available as indirect-call
	// targets (clamped to the 8-slot table).
	Funcs int
	// Workers is the number of spawned threads running the dispatch
	// loop alongside main.
	Workers int
	// Sites is the number of indirect call sites per loop body.
	Sites int
	// Iters is the trip count of each dispatch loop.
	Iters int
}

// DefaultDispatchConfig returns moderate bounds.
func DefaultDispatchConfig() DispatchConfig {
	return DispatchConfig{Funcs: 4, Workers: 2, Sites: 3, Iters: 48}
}

// GenerateDispatch produces a program whose hot loops are dominated by
// indirect calls through an 8-slot function table — the shape that
// speculative inline caches and superinstruction fusion accelerate,
// and that the tree-walking interpreter pays full dispatch cost on.
//
// input(0) is the polymorphism selector `sel`: every call site indexes
// the table as ftab[((expr) & sel) & 7], so sel=0 makes each site
// monomorphic (always slot 0), sel=3 bounds it to four slots (the
// inline-cache capacity), and sel=7 spreads it over the whole table.
// Profiling with a small sel and then analyzing with a larger one
// makes indirect calls escape the speculated callee set, which is how
// the callee-set violation path is exercised. input(1..Workers) seed
// the worker arguments.
//
// Leaf bodies are deliberately fusion-friendly: compare-then-branch,
// arithmetic-then-store, and copy-then-store patterns dominate.
func GenerateDispatch(seed uint64, cfg DispatchConfig) string {
	if cfg.Funcs <= 0 {
		cfg = DefaultDispatchConfig()
	}
	if cfg.Funcs > 8 {
		cfg.Funcs = 8
	}
	if cfg.Sites <= 0 {
		cfg.Sites = 1
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 16
	}
	g := &gen{r: &rng{s: seed*2654435761 + 1}}
	g.w("global acc = 0;")
	g.w("global sel = 0;")
	g.w("global arr[8];")
	g.w("global lk = 0;")
	g.w("global ftab[8];")
	g.w("")
	for i := 0; i < cfg.Funcs; i++ {
		g.fnNames = append(g.fnNames, fmt.Sprintf("f%d", i))
	}
	for i := 0; i < cfg.Funcs; i++ {
		g.dispatchLeaf(g.fnNames[i])
	}
	var workers []string
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("w%d", i)
		workers = append(workers, name)
		g.w("func %s(x) {", name)
		g.indent++
		g.dispatchLoop(cfg, "x")
		g.w("lock(&lk);")
		g.w("acc = acc + s;")
		g.w("unlock(&lk);")
		g.indent--
		g.w("}")
		g.w("")
	}
	g.w("func main() {")
	g.indent++
	// Slots 0..3 hold distinct functions (when available) so a sel=3
	// site's callee set exactly fills the inline cache; the upper half
	// is seed-shuffled so sel=7 runs differ across seeds.
	for i := 0; i < 8; i++ {
		fn := g.fnNames[i%len(g.fnNames)]
		if i >= 4 {
			fn = g.fnNames[g.r.intn(len(g.fnNames))]
		}
		g.w("ftab[%d] = %s;", i, fn)
	}
	g.w("sel = input(0);")
	for i, w := range workers {
		g.w("var t%d = spawn %s(input(%d));", i, w, i+1)
	}
	g.dispatchLoop(cfg, "7")
	for i := range workers {
		g.w("join(t%d);", i)
	}
	g.w("lock(&lk);")
	g.w("acc = acc + s;")
	g.w("unlock(&lk);")
	g.w("print(acc);")
	g.w("print(arr[3]);")
	g.indent--
	g.w("}")
	return g.b.String()
}

// dispatchLeaf emits one indirect-call target shaped like a bytecode
// handler body: a straight-line mixing chain of arithmetic, loads, and
// stores (the fusion pass's natural prey), one data-dependent branch,
// and a computed return. Call-free, so every activation is a leaf.
func (g *gen) dispatchLeaf(name string) {
	c1, c2, c3 := g.r.intn(32)+1, g.r.intn(32)+1, g.r.intn(16)+4
	g.w("func %s(x) {", name)
	g.indent++
	g.w("var a = (x + %d);", c1)
	g.w("var b = ((x << 3) ^ %d);", c2)
	g.w("a = (a + (b & 63));")
	g.w("b = (b + (a << 1));")
	g.w("a = (a ^ (b >> 2));")
	g.w("arr[(a) & 7] = (a ^ %d);", c2)
	g.w("b = (b + arr[(x) & 7]);")
	g.w("if (a < %d) {", c3)
	g.indent++
	g.w("a = ((a + b) ^ %d);", c1)
	g.w("b = (b + (a >> 1));")
	g.indent--
	g.w("}")
	g.w("return ((a + b) ^ %d);", c2)
	g.indent--
	g.w("}")
	g.w("")
}

// dispatchLoop emits the hot loop: Sites indirect calls per iteration,
// each through a sel-masked table slot, accumulating into `s`.
func (g *gen) dispatchLoop(cfg DispatchConfig, seedExpr string) {
	g.w("var i = 0;")
	g.w("var s = %s;", seedExpr)
	g.w("while (i < %d) {", cfg.Iters)
	g.indent++
	for k := 0; k < cfg.Sites; k++ {
		g.w("var h%d = ftab[((i + %d) & sel) & 7];", k, k)
		g.w("var v%d = h%d((i + s));", k, k)
		g.w("s = (s + (v%d ^ (s >> 3)));", k)
	}
	g.w("i = i + 1;")
	g.indent--
	g.w("}")
}
