package progen

import "fmt"

// NullableConfig bounds a generated pointer-discipline program (the
// OptNull differential family).
type NullableConfig struct {
	// Ptrs is the number of pointer globals (initially nil).
	Ptrs int
	// Targets is the number of scalar globals pointers may address.
	Targets int
	// Funcs is the number of helper functions dereferencing pointers.
	Funcs int
	// MaxStmts bounds statements per function body.
	MaxStmts int
}

// DefaultNullableConfig returns moderate bounds.
func DefaultNullableConfig() NullableConfig {
	return NullableConfig{Ptrs: 3, Targets: 3, Funcs: 3, MaxStmts: 6}
}

// GenerateNullable produces one random sequential pointer-discipline
// program for the null checker's differential suite. Pointer globals
// only ever hold nil, the address of a scalar global, an allocation,
// or another pointer's value — so the only possible memory fault is a
// nil dereference, which the generator permits freely: under a null-
// checking configuration it recovers deterministically (nil loads
// produce 0, nil stores are dropped), and without one both engines
// must trap identically. Programs terminate (loops are counter-
// bounded) and avoid every other trap (no arrays, no division, no
// locks, no threads).
func GenerateNullable(seed uint64, cfg NullableConfig) string {
	if cfg.Ptrs <= 0 {
		cfg = DefaultNullableConfig()
	}
	g := &nullGen{r: &rng{s: seed*0x9e3779b97f4a7c15 + 3}, cfg: cfg}
	return g.program()
}

type nullGen struct {
	r   *rng
	cfg NullableConfig
	b   lineWriter

	ptrs    []string
	targets []string
	fnNames []string

	locals  []string
	nextVar int
}

// lineWriter is a tiny indenting writer shared by the generator.
type lineWriter struct {
	sb     []byte
	indent int
}

func (w *lineWriter) w(format string, args ...any) {
	for i := 0; i < w.indent; i++ {
		w.sb = append(w.sb, '\t')
	}
	w.sb = append(w.sb, fmt.Sprintf(format, args...)...)
	w.sb = append(w.sb, '\n')
}

func (g *nullGen) program() string {
	for i := 0; i < g.cfg.Targets; i++ {
		name := fmt.Sprintf("t%d", i)
		g.targets = append(g.targets, name)
		g.b.w("global %s = %d;", name, 1+g.r.intn(40))
	}
	for i := 0; i < g.cfg.Ptrs; i++ {
		name := fmt.Sprintf("p%d", i)
		g.ptrs = append(g.ptrs, name)
		g.b.w("global %s = 0;", name)
	}
	g.b.w("global acc = 0;")
	g.b.w("")
	for i := 0; i < g.cfg.Funcs; i++ {
		g.fnNames = append(g.fnNames, fmt.Sprintf("h%d", i))
	}
	for _, name := range g.fnNames {
		g.helperFunc(name)
	}
	g.mainFunc()
	return string(g.b.sb)
}

func (g *nullGen) helperFunc(name string) {
	g.locals = []string{"x"}
	g.nextVar = 0
	g.b.w("func %s(x) {", name)
	g.b.indent++
	n := 2 + g.r.intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(2)
	}
	g.b.w("return acc + x;")
	g.b.indent--
	g.b.w("}")
	g.b.w("")
}

func (g *nullGen) mainFunc() {
	g.locals = nil
	g.nextVar = 0
	g.b.w("func main() {")
	g.b.indent++
	// Establish a pointer discipline: every pointer gets a target, and
	// some are input-guarded into nil (with or without a repair) — the
	// likely-non-null facts that hold on some inputs and not others.
	for i, p := range g.ptrs {
		switch g.r.intn(3) {
		case 0:
			g.b.w("%s = &%s;", p, g.r.pick(g.targets))
		case 1:
			g.b.w("%s = alloc(%d);", p, 1+g.r.intn(3))
			g.b.w("*%s = %d;", p, g.r.intn(30))
		default:
			g.b.w("%s = &%s;", p, g.r.pick(g.targets))
			g.b.w("if (input(%d) > %d) {", i, 400+g.r.intn(400))
			g.b.indent++
			g.b.w("%s = 0;", p)
			g.b.indent--
			if g.r.intn(2) == 0 {
				g.b.w("}")
				g.b.w("if (input(%d) < %d) {", i, 900+g.r.intn(300))
				g.b.indent++
				g.b.w("%s = &%s;", p, g.r.pick(g.targets))
				g.b.indent--
			}
			g.b.w("}")
		}
	}
	// A bounded driver loop mixing helper calls and direct derefs.
	g.b.w("var i = 0;")
	g.b.w("var lim = (input(%d) & 7) + 2;", g.cfg.Ptrs)
	g.locals = append(g.locals, "i", "lim")
	g.b.w("while (i < lim) {")
	g.b.indent++
	save := len(g.locals)
	n := 1 + g.r.intn(3)
	for k := 0; k < n; k++ {
		if g.r.intn(2) == 0 {
			g.b.w("var %s = %s(i + %d);", g.newLocal(), g.r.pick(g.fnNames), g.r.intn(9))
		} else {
			g.stmt(1)
		}
	}
	g.b.w("i = i + 1;")
	g.locals = g.locals[:save]
	g.b.indent--
	g.b.w("}")
	for _, t := range g.targets {
		g.b.w("print(%s);", t)
	}
	g.b.w("print(acc);")
	g.b.indent--
	g.b.w("}")
}

// stmt emits one pointer-flavored statement. depth bounds nesting.
func (g *nullGen) stmt(depth int) {
	choices := 7
	if depth <= 0 {
		choices = 4
	}
	p := g.r.pick(g.ptrs)
	switch g.r.intn(choices) {
	case 0: // deref load
		g.b.w("var %s = *%s;", g.newLocal(), p)
	case 1: // deref store
		g.b.w("*%s = %s;", p, g.expr(1))
	case 2: // accumulate
		g.b.w("acc = acc + %s;", g.expr(1))
	case 3: // pointer move: retarget, copy, or input-guarded drop to
		// nil. The drop must stay guarded: profiling runs carry no
		// null mask, so a program that unconditionally nils a pointer
		// it later derefs would trap during invariant profiling —
		// benign (small) inputs have to keep every deref non-nil.
		switch g.r.intn(4) {
		case 0:
			g.b.w("if (input(%d) > %d) {", g.r.intn(g.cfg.Ptrs), 400+g.r.intn(400))
			g.inBlock(func() { g.b.w("%s = 0;", p) })
			g.b.w("}")
		case 1:
			g.b.w("%s = %s;", p, g.r.pick(g.ptrs))
		default:
			g.b.w("%s = &%s;", p, g.r.pick(g.targets))
		}
	case 4: // guarded deref: the static pass's branch refinement
		g.b.w("if (%s != 0) {", p)
		g.inBlock(func() { g.b.w("acc = acc + *%s;", p) })
		g.b.w("} else {")
		g.inBlock(func() { g.b.w("acc = acc + 1;") })
		g.b.w("}")
	case 5: // conditional
		g.b.w("if (%s) {", g.expr(1))
		g.inBlock(func() { g.stmt(depth - 1) })
		g.b.w("}")
	default: // bounded loop
		i := g.newLocal()
		g.b.w("var %s = 0;", i)
		g.b.w("while (%s < %d) {", i, 2+g.r.intn(4))
		g.inBlock(func() {
			g.stmt(depth - 1)
			g.b.w("%s = %s + 1;", i, i)
		})
		g.b.w("}")
	}
}

func (g *nullGen) inBlock(body func()) {
	g.b.indent++
	save := len(g.locals)
	body()
	g.locals = g.locals[:save]
	g.b.indent--
}

func (g *nullGen) newLocal() string {
	v := fmt.Sprintf("v%d", g.nextVar)
	g.nextVar++
	g.locals = append(g.locals, v)
	return v
}

var nullBinOps = []string{"+", "-", "*", "&", "|", "^"}

// expr emits a side-effect-free, trap-free expression (no division,
// no derefs — derefs are statements so null instrumentation sites stay
// syntactically predictable).
func (g *nullGen) expr(depth int) string {
	if depth <= 0 || g.r.intn(3) == 0 {
		return g.atom()
	}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), g.r.pick(nullBinOps), g.expr(depth-1))
}

func (g *nullGen) atom() string {
	switch g.r.intn(4) {
	case 0:
		return fmt.Sprintf("%d", g.r.intn(50))
	case 1:
		return g.r.pick(g.targets)
	case 2:
		return fmt.Sprintf("input(%d)", g.r.intn(g.cfg.Ptrs+2))
	default:
		if len(g.locals) == 0 {
			return "acc"
		}
		return g.r.pick(g.locals)
	}
}
