package progen

import (
	"testing"

	"oha/internal/interp"
	"oha/internal/ir"
	"oha/internal/lang"
	"oha/internal/sched"
	"oha/internal/vc"
)

// nilCounter counts NilDeref events.
type nilCounter struct {
	interp.NopTracer
	n int
}

func (c *nilCounter) NilDeref(vc.TID, *ir.Instr) { c.n++ }

func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		src := Generate(seed, DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		for s := uint64(1); s <= 3; s++ {
			res, err := interp.Run(interp.Config{
				Prog:     prog,
				Inputs:   []int64{3, 1, 4, 1, 5, 9, 2, 6},
				Choose:   sched.NewSeeded(s),
				MaxSteps: 2_000_000,
			})
			if err != nil {
				t.Fatalf("seed %d/%d: run: %v\n%s", seed, s, err, src)
			}
			if len(res.Output) == 0 {
				t.Fatalf("seed %d: no output", seed)
			}
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		if Generate(seed, DefaultConfig()) != Generate(seed, DefaultConfig()) {
			t.Fatalf("seed %d: nondeterministic generation", seed)
		}
	}
	if Generate(1, DefaultConfig()) == Generate(2, DefaultConfig()) {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsAreDiverse(t *testing.T) {
	var withThreads, withLocks, withIndirect int
	for seed := uint64(0); seed < 40; seed++ {
		prog := lang.MustCompile(Generate(seed, DefaultConfig()))
		spawns, locks, indirect := 0, 0, 0
		for _, in := range prog.Instrs {
			switch {
			case in.Op.String() == "spawn":
				spawns++
			case in.Op.String() == "lock":
				locks++
			case in.IsIndirect():
				indirect++
			}
		}
		if spawns > 0 {
			withThreads++
		}
		if locks > 0 {
			withLocks++
		}
		if indirect > 0 {
			withIndirect++
		}
	}
	if withThreads < 30 {
		t.Errorf("only %d/40 programs spawn threads", withThreads)
	}
	if withLocks < 15 {
		t.Errorf("only %d/40 programs use locks", withLocks)
	}
	if withIndirect < 10 {
		t.Errorf("only %d/40 programs use indirect calls", withIndirect)
	}
}

// TestNullableProgramsCompileAndRun: every generated pointer program
// compiles, and runs to completion under an always-check null mask
// (nil derefs recover) across several inputs and seeds. Some inputs
// must actually hit a nil deref — otherwise the family exercises
// nothing.
func TestNullableProgramsCompileAndRun(t *testing.T) {
	inputVectors := [][]int64{
		{50, 60, 70, 3, 5},        // benign: guards keep pointers set
		{950, 980, 990, 6, 2},     // nil branch taken, repair taken
		{2000, 1500, 1800, 7, 1},  // nil branch taken, repair skipped
		{500, 2000, 100, 4, 9, 1}, // mixed
	}
	sawNil := false
	for seed := uint64(0); seed < 40; seed++ {
		src := GenerateNullable(seed, DefaultNullableConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		mask := make([]bool, len(prog.Instrs))
		for _, in := range prog.Instrs {
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				mask[in.ID] = true
			}
		}
		for vi, inputs := range inputVectors {
			nils := &nilCounter{}
			res, err := interp.Run(interp.Config{
				Prog:     prog,
				Inputs:   inputs,
				Tracer:   nils,
				NullMask: mask,
				Choose:   sched.NewSeeded(uint64(vi) + 1),
				MaxSteps: 2_000_000,
			})
			if err != nil {
				t.Fatalf("seed %d inputs %v: run: %v\n%s", seed, inputs, err, src)
			}
			if len(res.Output) == 0 {
				t.Fatalf("seed %d: no output", seed)
			}
			if res.Stats.NullChecks == 0 {
				t.Fatalf("seed %d: no null checks executed", seed)
			}
			if nils.n > 0 {
				sawNil = true
			}
		}
	}
	if !sawNil {
		t.Fatal("no generated program dereferenced nil on any input; family too tame")
	}
}

func TestNullableGenerationDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		if GenerateNullable(seed, DefaultNullableConfig()) != GenerateNullable(seed, DefaultNullableConfig()) {
			t.Fatalf("seed %d: nondeterministic generation", seed)
		}
	}
	if GenerateNullable(1, DefaultNullableConfig()) == GenerateNullable(2, DefaultNullableConfig()) {
		t.Error("different seeds produced identical programs")
	}
}
