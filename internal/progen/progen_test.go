package progen

import (
	"testing"

	"oha/internal/interp"
	"oha/internal/lang"
	"oha/internal/sched"
)

func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		src := Generate(seed, DefaultConfig())
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		for s := uint64(1); s <= 3; s++ {
			res, err := interp.Run(interp.Config{
				Prog:     prog,
				Inputs:   []int64{3, 1, 4, 1, 5, 9, 2, 6},
				Choose:   sched.NewSeeded(s),
				MaxSteps: 2_000_000,
			})
			if err != nil {
				t.Fatalf("seed %d/%d: run: %v\n%s", seed, s, err, src)
			}
			if len(res.Output) == 0 {
				t.Fatalf("seed %d: no output", seed)
			}
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		if Generate(seed, DefaultConfig()) != Generate(seed, DefaultConfig()) {
			t.Fatalf("seed %d: nondeterministic generation", seed)
		}
	}
	if Generate(1, DefaultConfig()) == Generate(2, DefaultConfig()) {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsAreDiverse(t *testing.T) {
	var withThreads, withLocks, withIndirect int
	for seed := uint64(0); seed < 40; seed++ {
		prog := lang.MustCompile(Generate(seed, DefaultConfig()))
		spawns, locks, indirect := 0, 0, 0
		for _, in := range prog.Instrs {
			switch {
			case in.Op.String() == "spawn":
				spawns++
			case in.Op.String() == "lock":
				locks++
			case in.IsIndirect():
				indirect++
			}
		}
		if spawns > 0 {
			withThreads++
		}
		if locks > 0 {
			withLocks++
		}
		if indirect > 0 {
			withIndirect++
		}
	}
	if withThreads < 30 {
		t.Errorf("only %d/40 programs spawn threads", withThreads)
	}
	if withLocks < 15 {
		t.Errorf("only %d/40 programs use locks", withLocks)
	}
	if withIndirect < 10 {
		t.Errorf("only %d/40 programs use indirect calls", withIndirect)
	}
}
