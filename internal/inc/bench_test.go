package inc

import (
	"testing"

	"oha/internal/core"
	"oha/internal/ctxs"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/lang"
	"oha/internal/mhp"
	"oha/internal/pointsto"
	"oha/internal/progen"
	"oha/internal/staticrace"
)

// benchSetup builds a larger generated program, its profiled DB, one
// single-fact weakening of it, and the base generation's saturated
// pipeline — the inputs of one adaptive reconcile.
func benchSetup(b testing.TB) (*ir.Program, *invariants.DB, *invariants.DB, *Generation) {
	b.Helper()
	src := progen.Generate(3, progen.Config{Funcs: 24, Workers: 6, MaxDepth: 4, MaxStmts: 10})
	prog, err := lang.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	inputs := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	pr, err := core.Profile(prog, func(run int) core.Execution {
		return core.Execution{Inputs: inputs, Seed: uint64(run + 1)}
	}, 8)
	if err != nil {
		b.Fatal(err)
	}
	base := pr.DB
	pt, err := pointsto.Analyze(prog, ctxs.NewCI(prog), base)
	if err != nil {
		b.Fatal(err)
	}
	m := mhp.Analyze(prog, pt, base)
	sr := staticrace.Analyze(prog, pt, m, base)
	gen := &Generation{DB: base, PT: pt, MHP: m, Race: sr}

	refined := base.Clone()
	marked := false
	for _, fn := range prog.Funcs {
		for _, blk := range fn.Blocks {
			if !base.Visited.Has(blk.ID) && refined.MarkVisited(blk.ID) {
				marked = true
				break
			}
		}
		if marked {
			break
		}
	}
	if !marked {
		b.Fatal("no likely-unreachable block to refine")
	}
	return prog, base, refined, gen
}

// BenchmarkStaticFromScratch is the baseline an adaptive reconcile
// pays without the incremental pipeline: the full sequential
// predicated static race pipeline under the refined DB.
func BenchmarkStaticFromScratch(b *testing.B) {
	prog, _, refined, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := pointsto.Analyze(prog, ctxs.NewCI(prog), refined)
		if err != nil {
			b.Fatal(err)
		}
		m := mhp.Analyze(prog, pt, refined)
		_ = staticrace.Analyze(prog, pt, m, refined)
	}
}

// BenchmarkStaticIncremental resumes the base generation's saturated
// solver state and re-evaluates only the dirty race rows — the fast
// path Reanalyze takes after a refinement.
func BenchmarkStaticIncremental(b *testing.B) {
	prog, base, refined, gen := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, err := pointsto.Resume(gen.PT, refined)
		if err != nil {
			b.Fatal(err)
		}
		m := mhp.Analyze(prog, pt, refined)
		_ = staticrace.Incremental(prog, pt, m, refined, staticrace.Prev{
			Race: gen.Race, PT: gen.PT, MHP: gen.MHP, DB: base,
		})
	}
}

// BenchmarkPointsToParallel measures the sharded worklist solver from
// scratch (GOMAXPROCS workers).
func BenchmarkPointsToParallel(b *testing.B) {
	prog, _, refined, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pointsto.AnalyzeParallel(prog, ctxs.NewCI(prog), refined, 0); err != nil {
			b.Fatal(err)
		}
	}
}
