// Package inc is the incremental + parallel static-analysis pipeline:
// the fast path for re-running the predicated race pipeline after an
// adaptive refinement (ISSUE: make re-analysis the fast path).
//
// A refinement removes one likely-invariant fact, which only ever ADDS
// constraints to the context-insensitive predicated analyses — blocks
// are un-pruned, callee sets widen, singleton-spawn and guarding-lock
// assumptions are dropped. Andersen constraint solving computes the
// unique least fixpoint of a monotone system, so generation N's
// saturated solver state is a valid intermediate state for generation
// N+1: Reanalyze seeds only the delta constraints and resumes, instead
// of re-solving from scratch. The static race pass then re-evaluates
// only access pairs whose verdict inputs (address points-to sets,
// locksets, MHP signatures, must-alias facts) changed.
//
// Saturated state is kept in the artifact cache under
// artifacts.KindSolverState as a Generation bundle — the points-to,
// MHP, and race results plus the database they assumed, all sharing
// one object numbering. Internal consistency of the bundle is what
// makes the incremental diffs valid; the individual per-kind artifacts
// are also published so the ordinary cached constructors
// (core.NewOptFTCached etc.) hit them for free.
//
// Every incremental or parallel result is digest-identical to the
// sequential from-scratch result — verified exhaustively by this
// package's equivalence tests.
package inc

import (
	"time"

	"oha/internal/artifacts"
	"oha/internal/ctxs"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/metrics"
	"oha/internal/mhp"
	"oha/internal/pointsto"
	"oha/internal/staticrace"
)

// Options configures a re-analysis.
type Options struct {
	// Workers bounds the parallel solvers (0 = GOMAXPROCS, 1 =
	// sequential). The result is identical for every value.
	Workers int
	// Incremental enables resume-from-saturated-state when a previous
	// generation's bundle is available; off, every generation re-solves
	// from scratch (still parallel).
	Incremental bool
	// Metrics receives phase timings and the constraint reuse ratio
	// (nil: unobserved).
	Metrics *Metrics
}

// Generation is the internally-consistent bundle of one generation's
// static results: PT, MHP, and Race share one solver object numbering,
// and DB is the database they assumed. It is the solver state the next
// generation resumes from.
type Generation struct {
	DB   *invariants.DB
	PT   *pointsto.Result
	MHP  *mhp.Result
	Race *staticrace.Result
}

// Stats describes how one re-analysis ran.
type Stats struct {
	// Mode is "cached" (everything already in the cache),
	// "incremental" (resumed from the previous generation's saturated
	// state), or "scratch".
	Mode string
	// ReuseRatio is the fraction of points-to constraints inherited
	// from the resumed state (0 outside incremental mode).
	ReuseRatio float64
	// Phases holds per-phase wall-clock seconds (pointsto, mhp, race).
	Phases map[string]float64
}

// Metrics holds the static-pipeline metrics: per-phase latency
// histograms and the incremental constraint-reuse gauge. A nil
// *Metrics is valid and records nothing.
type Metrics struct {
	Phase *metrics.HistogramVec // oha_static_phase_seconds{phase=...,client=...}
	Reuse *metrics.FloatGauge   // oha_inc_reuse_ratio
}

// NewMetrics registers the pipeline metrics on reg (nil reg: working,
// unregistered metrics). Phase latencies carry a client label so one
// family serves every analysis client.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Phase: reg.NewHistogramVec("oha_static_phase_seconds",
			"Wall-clock seconds per static-analysis phase.", "phase", "client"),
		Reuse: reg.NewFloatGauge("oha_inc_reuse_ratio",
			"Fraction of points-to constraints reused by the last incremental re-analysis."),
	}
}

// ObservePhase records one phase's wall-clock seconds for one client.
func (m *Metrics) ObservePhase(phase, client string, secs float64) {
	if m != nil {
		m.Phase.With(phase, client).Observe(secs)
	}
}

// ObserveReuse records the constraint reuse ratio of a re-analysis.
func (m *Metrics) ObserveReuse(r float64) {
	if m != nil {
		m.Reuse.Set(r)
	}
}

// solverStateKey keys a generation bundle by (IR digest, DB digest).
func solverStateKey(prog *ir.Program, db *invariants.DB) string {
	return artifacts.Key(artifacts.KindSolverState, prog, db, 0, "ci")
}

// Reanalyze runs (or reuses) the predicated static race pipeline for
// newDB, preferring, in order: the cache (newDB already analyzed), an
// incremental resume from oldDB's saturated solver state, and a
// parallel from-scratch solve. The resulting per-kind artifacts and
// the generation bundle are published to the cache under newDB's
// digest, so subsequent detector construction (core.NewOptFTCached and
// friends) and the NEXT refinement's resume both hit.
func Reanalyze(prog *ir.Program, oldDB, newDB *invariants.DB, cache *artifacts.Cache, opts Options) (*Generation, Stats, error) {
	st := Stats{Phases: map[string]float64{}}
	ptKey := artifacts.Key(artifacts.KindPointsTo, prog, newDB, 0, "ci")
	mhpKey := artifacts.Key(artifacts.KindMHP, prog, newDB, 0, "ci")
	raceKey := artifacts.Key(artifacts.KindStaticRace, prog, newDB, 0, "ci")

	// Already analyzed: serve the cached generation.
	if g, ok := loadBundle(prog, newDB, cache); ok {
		st.Mode = "cached"
		return g, st, nil
	}

	var pt *pointsto.Result
	var m *mhp.Result
	var sr *staticrace.Result

	// Incremental: resume from the previous generation's bundle.
	if opts.Incremental && oldDB != nil {
		if prev, ok := loadBundle(prog, oldDB, cache); ok {
			t := time.Now()
			if resumed, err := pointsto.Resume(prev.PT, newDB); err == nil {
				pt = resumed
				st.Phases["pointsto"] = time.Since(t).Seconds()
				t = time.Now()
				m = mhp.Analyze(prog, pt, newDB)
				st.Phases["mhp"] = time.Since(t).Seconds()
				t = time.Now()
				sr = staticrace.Incremental(prog, pt, m, newDB, staticrace.Prev{
					Race: prev.Race, PT: prev.PT, MHP: prev.MHP, DB: prev.DB,
				})
				st.Phases["race"] = time.Since(t).Seconds()
				st.Mode = "incremental"
				if n := pt.ConstraintCount(); n > 0 {
					st.ReuseRatio = float64(prev.PT.ConstraintCount()) / float64(n)
				}
			}
		}
	}

	// From scratch (parallel).
	if pt == nil {
		var err error
		t := time.Now()
		pt, err = pointsto.AnalyzeParallel(prog, ctxs.NewCI(prog), newDB, opts.Workers)
		if err != nil {
			return nil, st, err
		}
		st.Phases["pointsto"] = time.Since(t).Seconds()
		t = time.Now()
		m = mhp.Analyze(prog, pt, newDB)
		st.Phases["mhp"] = time.Since(t).Seconds()
		t = time.Now()
		sr = staticrace.AnalyzeParallel(prog, pt, m, newDB, opts.Workers)
		st.Phases["race"] = time.Since(t).Seconds()
		st.Mode = "scratch"
	}

	g := &Generation{DB: newDB, PT: pt, MHP: m, Race: sr}
	publish(prog, newDB, cache, g, ptKey, mhpKey, raceKey)
	for phase, secs := range st.Phases {
		opts.Metrics.ObservePhase(phase, "race", secs)
	}
	opts.Metrics.ObserveReuse(st.ReuseRatio)
	return g, st, nil
}

// loadBundle returns the saturated generation bundle for db. When only
// the per-kind artifacts are cached — the base generation is built by
// core's cached constructors, which don't write bundles — the bundle
// is assembled from them and published. That assembly is internally
// consistent because every cached MHP and race entry is derived from
// the single memoized points-to result under the same key, whose
// object numbering is what the bundle shares.
func loadBundle(prog *ir.Program, db *invariants.DB, cache *artifacts.Cache) (*Generation, bool) {
	if cache == nil {
		return nil, false
	}
	if bv, ok := cache.PeekDisk(solverStateKey(prog, db), GenerationCodec(prog, db)); ok {
		return bv.(*Generation), true
	}
	pv, ok := cache.PeekDisk(artifacts.Key(artifacts.KindPointsTo, prog, db, 0, "ci"), artifacts.PointsToCodec(prog, db))
	if !ok {
		return nil, false
	}
	mv, ok := cache.PeekDisk(artifacts.Key(artifacts.KindMHP, prog, db, 0, "ci"), artifacts.MHPCodec(prog))
	if !ok {
		return nil, false
	}
	rv, ok := cache.PeekDisk(artifacts.Key(artifacts.KindStaticRace, prog, db, 0, "ci"), artifacts.RaceCodec(prog))
	if !ok {
		return nil, false
	}
	g := &Generation{DB: db, PT: pv.(*pointsto.Result), MHP: mv.(*mhp.Result), Race: rv.(*staticrace.Result)}
	cache.Memo(solverStateKey(prog, db), GenerationCodec(prog, db), func() (any, error) { return g, nil }) //nolint:errcheck
	return g, true
}

// publish stores the generation's artifacts in the cache: the
// per-kind entries the ordinary cached constructors consult, and the
// bundle the next incremental resume loads. Memo never replaces an
// existing entry (singleflight, permanent), so a concurrent compute
// winning the per-kind slots is harmless — results are
// digest-identical — while the bundle stays internally consistent by
// construction.
func publish(prog *ir.Program, db *invariants.DB, cache *artifacts.Cache, g *Generation, ptKey, mhpKey, raceKey string) {
	if cache == nil {
		return
	}
	cache.Memo(ptKey, artifacts.PointsToCodec(prog, db), func() (any, error) { return g.PT, nil })
	cache.Memo(mhpKey, artifacts.MHPCodec(prog), func() (any, error) { return g.MHP, nil })
	cache.Memo(raceKey, artifacts.RaceCodec(prog), func() (any, error) { return g.Race, nil })
	cache.Memo(solverStateKey(prog, db), GenerationCodec(prog, db), func() (any, error) { return g, nil })
}
