package inc

import (
	"testing"

	"oha/internal/artifacts"
)

// TestReanalyzeSurvivesRestart simulates a daemon restart: generation
// bundles published through a disk-backed cache must come back through
// a FRESH cache over the same directory with mode "cached" and zero
// solve misses — the zero-compile, zero-solve cold start the disk tier
// exists for. It then checks the restored bundle still supports an
// incremental resume with digest-identical results.
func TestReanalyzeSurvivesRestart(t *testing.T) {
	prog, base := testProgram(t, 1)
	weaks := singleFactWeakenings(prog, base)
	if len(weaks) == 0 {
		t.Fatal("no weakenings")
	}
	w := weaks[0]
	wantPT, wantRace, _ := pipelineDigests(t, prog, w.db)

	dir := t.TempDir()
	c1 := artifacts.New(dir)
	if _, st, err := Reanalyze(prog, nil, base, c1, Options{Incremental: true}); err != nil {
		t.Fatal(err)
	} else if st.Mode != "scratch" {
		t.Fatalf("cold: mode %q, want scratch", st.Mode)
	}

	// "Restart": a fresh cache over the same directory knows nothing
	// in memory but everything on disk.
	c2 := artifacts.New(dir)
	g, st, err := Reanalyze(prog, nil, base, c2, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "cached" {
		t.Fatalf("restart: mode %q, want cached", st.Mode)
	}
	if s := c2.Stats(); s.Misses != 0 {
		t.Fatalf("restart: %d solve misses, want 0 (stats %+v)", s.Misses, s)
	}
	if c2.DiskHits() == 0 {
		t.Fatal("restart: no disk hits recorded")
	}

	// The restored generation is a valid resume base: refine and
	// require digest identity with the from-scratch reference.
	g2, st2, err := Reanalyze(prog, base, w.db, c2, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Mode != "incremental" {
		t.Fatalf("refine after restart: mode %q, want incremental", st2.Mode)
	}
	if got := g2.PT.CanonicalDigest(); got != wantPT {
		t.Fatal("refine after restart: points-to digest diverged")
	}
	if got := g2.Race.CanonicalDigest(); got != wantRace {
		t.Fatal("refine after restart: race digest diverged")
	}
	_ = g
}
