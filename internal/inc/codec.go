package inc

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"oha/internal/artifacts"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/mhp"
	"oha/internal/pointsto"
	"oha/internal/staticrace"
)

// wireGeneration is the disk image of a Generation bundle: the three
// per-kind portable payloads. The DB is NOT stored — the cache key
// covers its digest, so the decoder binds the caller's live database,
// and a key match guarantees it is the database the bundle assumed.
type wireGeneration struct {
	PT, MHP, Race []byte
}

// genCodec persists *Generation bundles for one (program, DB) pair.
type genCodec struct {
	prog *ir.Program
	db   *invariants.DB
}

func (c genCodec) Marshal(v any) ([]byte, error) {
	g := v.(*Generation)
	var w wireGeneration
	var err error
	if w.PT, err = g.PT.Encode(); err != nil {
		return nil, err
	}
	if w.MHP, err = g.MHP.Encode(); err != nil {
		return nil, err
	}
	if w.Race, err = g.Race.Encode(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c genCodec) Unmarshal(data []byte) (any, error) {
	var w wireGeneration
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("inc: decode generation: %w", err)
	}
	pt, err := pointsto.DecodeResult(c.prog, c.db, w.PT)
	if err != nil {
		return nil, err
	}
	m, err := mhp.DecodeResult(c.prog, w.MHP)
	if err != nil {
		return nil, err
	}
	race, err := staticrace.DecodeResult(c.prog, w.Race)
	if err != nil {
		return nil, err
	}
	return &Generation{DB: c.db, PT: pt, MHP: m, Race: race}, nil
}

// GenerationCodec returns the on-disk codec for Generation bundles of
// one (program, invariant DB) pair — what lets a restarted daemon
// resume incremental re-analysis from the previous process's last
// saturated generation. Context-sensitive bundles refuse to marshal
// and stay memory-only.
func GenerationCodec(prog *ir.Program, db *invariants.DB) artifacts.Codec {
	return genCodec{prog: prog, db: db}
}
