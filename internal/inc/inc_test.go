package inc

import (
	"fmt"
	"strings"
	"testing"

	"oha/internal/artifacts"
	"oha/internal/core"
	"oha/internal/ctxs"
	"oha/internal/invariants"
	"oha/internal/ir"
	"oha/internal/lang"
	"oha/internal/metrics"
	"oha/internal/mhp"
	"oha/internal/pointsto"
	"oha/internal/progen"
	"oha/internal/staticrace"
)

// testProgram compiles one generated program and profiles a base
// invariant DB for it.
func testProgram(t *testing.T, seed uint64) (*ir.Program, *invariants.DB) {
	t.Helper()
	src := progen.Generate(seed, progen.DefaultConfig())
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	inputs := make([]int64, 8)
	for j := range inputs {
		z := seed*1000 + uint64(j) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		inputs[j] = int64((z ^ (z >> 27)) % 100)
	}
	pr, err := core.Profile(prog, func(run int) core.Execution {
		return core.Execution{Inputs: inputs, Seed: uint64(run + 1)}
	}, 8)
	if err != nil {
		t.Fatalf("seed %d: profile: %v", seed, err)
	}
	return prog, pr.DB
}

// weakening is one single-fact removal from a profiled DB.
type weakening struct {
	name string
	db   *invariants.DB
}

// singleFactWeakenings enumerates every single-fact removal the
// refinement policy can produce from db (capped per category so the
// exhaustive product stays fast).
func singleFactWeakenings(prog *ir.Program, db *invariants.DB) []weakening {
	const perKind = 6
	var out []weakening
	n := 0
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			if db.Visited.Has(b.ID) || n >= perKind {
				continue
			}
			w := db.Clone()
			if w.MarkVisited(b.ID) {
				out = append(out, weakening{fmt.Sprintf("visit-block-%d", b.ID), w})
				n++
			}
		}
	}
	db.SingletonSpawns.ForEach(func(site int) bool {
		w := db.Clone()
		if w.RetractSingletonSpawn(site) {
			out = append(out, weakening{fmt.Sprintf("retract-singleton-%d", site), w})
		}
		return true
	})
	seenGroup := map[int]bool{}
	for pair := range db.MustAliasLocks {
		if seenGroup[pair.A] {
			continue
		}
		w := db.Clone()
		if w.DropMustAliasGroup(pair.A) > 0 {
			out = append(out, weakening{fmt.Sprintf("drop-alias-%d", pair.A), w})
			// Group members share the outcome; skip their duplicates.
			for p := range db.MustAliasLocks {
				if !w.MustAliasLocks[p] {
					seenGroup[p.A], seenGroup[p.B] = true, true
				}
			}
		}
	}
	n = 0
	for _, in := range prog.Instrs {
		if in.Op != ir.OpCall && in.Op != ir.OpSpawn || in.Callee != nil || n >= perKind {
			continue
		}
		for _, fn := range prog.Funcs {
			if set, ok := db.Callees[in.ID]; ok && set.Has(fn.ID) {
				continue
			}
			w := db.Clone()
			if w.WidenCallees(in.ID, fn.ID) {
				out = append(out, weakening{fmt.Sprintf("widen-call-%d-fn-%d", in.ID, fn.ID), w})
				n++
			}
			break // one widened callee per site is enough
		}
	}
	if w := db.Clone(); w.ClearElidableLocks() {
		out = append(out, weakening{"clear-elidable", w})
	}
	for _, in := range prog.Instrs {
		if in.Op == ir.OpCall {
			w := db.Clone()
			if w.AddContext([]int{in.ID}) {
				out = append(out, weakening{fmt.Sprintf("add-context-%d", in.ID), w})
			}
			break
		}
	}
	return out
}

// pipelineDigests runs the sequential from-scratch pipeline and
// returns its canonical digests (points-to, race, masks).
func pipelineDigests(t *testing.T, prog *ir.Program, db *invariants.DB) (string, string, string) {
	t.Helper()
	pt, err := pointsto.Analyze(prog, ctxs.NewCI(prog), db)
	if err != nil {
		t.Fatalf("pointsto: %v", err)
	}
	m := mhp.Analyze(prog, pt, db)
	sr := staticrace.Analyze(prog, pt, m, db)
	return pt.CanonicalDigest(), sr.CanonicalDigest(), maskDigest(sr, db)
}

func maskDigest(sr *staticrace.Result, db *invariants.DB) string {
	mem, sync := sr.Masks(db)
	return fmt.Sprintf("%v|%v", mem, sync)
}

// TestIncrementalEquivalence is the acceptance property: for every
// generated program and every single-fact removal from its profiled
// DB, the incremental resume and the parallel solvers (1, 2, and 8
// workers) produce digests bit-identical to the sequential
// from-scratch pipeline — for points-to, race pairs, and masks.
func TestIncrementalEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		prog, base := testProgram(t, seed)

		// The resume base: the base DB's saturated pipeline.
		basePT, err := pointsto.Analyze(prog, ctxs.NewCI(prog), base)
		if err != nil {
			t.Fatalf("seed %d: base pointsto: %v", seed, err)
		}
		baseMHP := mhp.Analyze(prog, basePT, base)
		baseRace := staticrace.Analyze(prog, basePT, baseMHP, base)

		weaks := singleFactWeakenings(prog, base)
		if len(weaks) == 0 {
			t.Fatalf("seed %d: no weakenings enumerated", seed)
		}
		for _, w := range weaks {
			wantPT, wantRace, wantMasks := pipelineDigests(t, prog, w.db)

			// Parallel from scratch at several worker counts.
			for _, workers := range []int{1, 2, 8} {
				pt, err := pointsto.AnalyzeParallel(prog, ctxs.NewCI(prog), w.db, workers)
				if err != nil {
					t.Fatalf("seed %d %s: parallel(%d): %v", seed, w.name, workers, err)
				}
				if got := pt.CanonicalDigest(); got != wantPT {
					t.Fatalf("seed %d %s: parallel(%d) points-to digest diverged", seed, w.name, workers)
				}
				m := mhp.Analyze(prog, pt, w.db)
				sr := staticrace.AnalyzeParallel(prog, pt, m, w.db, workers)
				if got := sr.CanonicalDigest(); got != wantRace {
					t.Fatalf("seed %d %s: parallel(%d) race digest diverged", seed, w.name, workers)
				}
				if got := maskDigest(sr, w.db); got != wantMasks {
					t.Fatalf("seed %d %s: parallel(%d) masks diverged", seed, w.name, workers)
				}
			}

			// Incremental resume from the base generation.
			pt, err := pointsto.Resume(basePT, w.db)
			if err != nil {
				t.Fatalf("seed %d %s: resume: %v", seed, w.name, err)
			}
			if got := pt.CanonicalDigest(); got != wantPT {
				t.Fatalf("seed %d %s: incremental points-to digest diverged", seed, w.name)
			}
			m := mhp.Analyze(prog, pt, w.db)
			sr := staticrace.Incremental(prog, pt, m, w.db, staticrace.Prev{
				Race: baseRace, PT: basePT, MHP: baseMHP, DB: base,
			})
			if got := sr.CanonicalDigest(); got != wantRace {
				t.Fatalf("seed %d %s: incremental race digest diverged", seed, w.name)
			}
			if got := maskDigest(sr, w.db); got != wantMasks {
				t.Fatalf("seed %d %s: incremental masks diverged", seed, w.name)
			}
		}
	}
}

// TestReanalyzeModes drives the full Reanalyze flow: cold cache →
// scratch, warm solver state → incremental, already-analyzed →
// cached — each mode digest-identical to the others and to the
// sequential reference.
func TestReanalyzeModes(t *testing.T) {
	prog, base := testProgram(t, 1)
	weaks := singleFactWeakenings(prog, base)
	if len(weaks) == 0 {
		t.Fatal("no weakenings")
	}
	w := weaks[0]
	wantPT, wantRace, _ := pipelineDigests(t, prog, w.db)

	check := func(g *Generation, mode string) {
		t.Helper()
		if got := g.PT.CanonicalDigest(); got != wantPT {
			t.Fatalf("%s: points-to digest diverged", mode)
		}
		if got := g.Race.CanonicalDigest(); got != wantRace {
			t.Fatalf("%s: race digest diverged", mode)
		}
	}

	// Cold cache: from scratch, publishing the bundle.
	cache := artifacts.New("")
	g, st, err := Reanalyze(prog, nil, base, cache, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "scratch" {
		t.Fatalf("cold base: mode %q, want scratch", st.Mode)
	}
	_ = g

	// Warm solver state: the refined DB resumes incrementally.
	g2, st2, err := Reanalyze(prog, base, w.db, cache, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Mode != "incremental" {
		t.Fatalf("warm: mode %q, want incremental", st2.Mode)
	}
	if st2.ReuseRatio <= 0 || st2.ReuseRatio > 1 {
		t.Fatalf("warm: reuse ratio %v out of (0,1]", st2.ReuseRatio)
	}
	check(g2, "incremental")

	// Same request again: served from the cache.
	g3, st3, err := Reanalyze(prog, base, w.db, cache, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Mode != "cached" {
		t.Fatalf("cached: mode %q, want cached", st3.Mode)
	}
	check(g3, "cached")

	// Incremental off: scratch even with the warm bundle.
	g4, st4, err := Reanalyze(prog, base, w.db, artifacts.New(""), Options{Incremental: false})
	if err != nil {
		t.Fatal(err)
	}
	if st4.Mode != "scratch" {
		t.Fatalf("inc off: mode %q, want scratch", st4.Mode)
	}
	check(g4, "scratch")
}

// TestMetricsExposition: the pipeline metrics render under their
// documented names with per-phase labels.
func TestMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	met := NewMetrics(reg)
	met.ObservePhase("pointsto", "race", 0.01)
	met.ObservePhase("race", "race", 0.02)
	met.ObserveReuse(0.75)

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`oha_static_phase_seconds_bucket{phase="pointsto",client="race",le=`,
		`oha_static_phase_seconds_count{phase="race",client="race"} 1`,
		"oha_inc_reuse_ratio 0.75",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// A nil *Metrics records nothing and never panics.
	var nilMet *Metrics
	nilMet.ObservePhase("pointsto", "race", 1)
	nilMet.ObserveReuse(1)
}
