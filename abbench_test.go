package oha

// Tightly paired in-process A/B measurement of the compiled engine's
// speculative lowerings (inline caches + superinstruction fusion) on
// the dispatch-heavy workloads. Cross-process benchmark runs on shared
// hardware drift by 2x mid-run, which swamps the effect being measured;
// alternating short same-process segments and taking the median of
// adjacent-pair wall-time ratios cancels the drift (both sides of a
// pair see the same machine state). These tests never fail on
// performance — they print the measured ratios (visible under -v and in
// `go test -json` streams, e.g. scripts/bench_snapshot.sh) so the
// numbers in BENCH_*.json snapshots stay reproducible.

import (
	"runtime"
	"sort"
	"testing"
	"time"

	"oha/internal/core"
	"oha/internal/fasttrack"
	"oha/internal/interp"
	"oha/internal/sched"
	"oha/internal/workloads"
)

func pairedSpeedup(t *testing.T, traced bool) {
	if testing.Short() {
		t.Skip("paired measurement is a timing loop; skipped in -short")
	}
	const segRuns = 30 // executions per timed segment
	const pairs = 100  // A/B segment pairs

	for _, name := range []string{"dispatch-mono", "dispatch-poly"} {
		w := workloads.ByName(name)
		prog := w.Prog()
		inputs := w.GenInput(1000)
		blockMask := make([]bool, len(prog.Blocks))
		m := interp.Masks{Mem: []bool{}, Sync: []bool{}, Block: []bool{}}
		if traced {
			m = interp.Masks{Block: blockMask}
		}
		base := interp.CompileWith(prog, m, interp.CompileOptions{DisableIC: true, DisableFusion: true})
		pr, err := core.Profile(prog, func(run int) core.Execution {
			return core.Execution{Inputs: w.GenInput(run), Seed: uint64(run + 1)}
		}, 8)
		if err != nil {
			t.Fatal(err)
		}
		seeds := map[int][]int{}
		for site, set := range pr.DB.Callees {
			if set != nil && !set.IsEmpty() {
				seeds[site] = set.Slice()
			}
		}
		ic := interp.CompileWith(prog, m, interp.CompileOptions{Callees: seeds})
		if ic.ICSites() == 0 {
			t.Fatal("no IC sites")
		}

		seg := func(code *interp.Code, runs int) (time.Duration, uint64) {
			var steps uint64
			start := time.Now()
			for r := 0; r < runs; r++ {
				cfg := interp.Config{
					Prog:   prog,
					Inputs: inputs,
					Choose: sched.NewSeeded(2000),
					Engine: interp.EngineCompiled,
					Code:   code,
				}
				if traced {
					cfg.Tracer = fasttrack.New()
					cfg.BlockMask = blockMask
				}
				res, err := interp.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				steps += res.Stats.Steps
			}
			return time.Since(start), steps
		}

		// Warm up both images.
		seg(base, segRuns)
		seg(ic, segRuns)

		var ratios []float64
		var baseTot, icTot time.Duration
		var baseSteps, icSteps uint64
		for p := 0; p < pairs; p++ {
			// Collect between pairs, then re-warm each image with one
			// unmeasured execution: without this, garbage from one
			// side's segment was collected inside the other side's
			// timed window, skewing adjacent ratios.
			runtime.GC()
			seg(base, 1)
			seg(ic, 1)
			bd, bs := seg(base, segRuns)
			id, is := seg(ic, segRuns)
			baseTot += bd
			icTot += id
			baseSteps += bs
			icSteps += is
			// steps are identical per run; ratio of wall times is the
			// speedup for this adjacent pair.
			ratios = append(ratios, float64(bd)/float64(id))
		}
		sort.Float64s(ratios)
		med := ratios[len(ratios)/2]
		label := "off"
		if traced {
			label = "fasttrack"
		}
		t.Logf("%s[%s]: pairs=%d median speedup=%.3f p25=%.3f p75=%.3f base=%.1fM/s ic=%.1fM/s",
			name, label, pairs, med, ratios[len(ratios)/4], ratios[3*len(ratios)/4],
			float64(baseSteps)/baseTot.Seconds()/1e6,
			float64(icSteps)/icTot.Seconds()/1e6)
	}
}

// TestPairedSpeedup measures inline caches + fusion with tracing off.
func TestPairedSpeedup(t *testing.T) { pairedSpeedup(t, false) }

// TestPairedSpeedupFastTrack measures the same pair with the FastTrack
// race detector attached (full memory/sync instrumentation).
func TestPairedSpeedupFastTrack(t *testing.T) { pairedSpeedup(t, true) }

// TestPairedSpeedupFastPath measures the inline analysis fast paths:
// with the FastTrack detector attached under full instrumentation, a
// fastpath-enabled image against a DisableFastPath image of the same
// configuration, over the Figure 5 race suite plus dispatch-mono. The
// same interleaved-pairs discipline as pairedSpeedup applies; the
// logged median is the traced steps/sec speedup the devirtualized
// epoch fast path buys.
func TestPairedSpeedupFastPath(t *testing.T) {
	if testing.Short() {
		t.Skip("paired measurement is a timing loop; skipped in -short")
	}
	const segRuns = 10 // executions per timed segment
	const pairs = 100  // A/B segment pairs

	names := []string{"dispatch-mono"}
	for _, w := range workloads.Races() {
		names = append(names, w.Name)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			w := workloads.ByName(name)
			prog := w.Prog()
			inputs := w.GenInput(1000)
			blockMask := make([]bool, len(prog.Blocks))
			m := interp.Masks{Block: blockMask}
			on := interp.CompileWith(prog, m, interp.CompileOptions{})
			off := interp.CompileWith(prog, m, interp.CompileOptions{DisableFastPath: true})

			seg := func(code *interp.Code, runs int) (time.Duration, uint64) {
				var steps uint64
				start := time.Now()
				for r := 0; r < runs; r++ {
					res, err := interp.Run(interp.Config{
						Prog:      prog,
						Inputs:    inputs,
						Choose:    sched.NewSeeded(2000),
						Engine:    interp.EngineCompiled,
						Code:      code,
						Tracer:    fasttrack.New(),
						BlockMask: blockMask,
					})
					if err != nil {
						t.Fatal(err)
					}
					steps += res.Stats.Steps
				}
				return time.Since(start), steps
			}

			// One instrumented run for the hit-rate context line.
			probe, err := interp.Run(interp.Config{
				Prog: prog, Inputs: inputs, Choose: sched.NewSeeded(2000),
				Engine: interp.EngineCompiled, Code: on,
				Tracer: fasttrack.New(), BlockMask: blockMask,
			})
			if err != nil {
				t.Fatal(err)
			}
			fp := probe.IC.FastPath

			// Warm up both images.
			seg(on, segRuns)
			seg(off, segRuns)

			var ratios []float64
			var onTot, offTot time.Duration
			var onSteps, offSteps uint64
			for p := 0; p < pairs; p++ {
				runtime.GC()
				seg(off, 1)
				seg(on, 1)
				od, os := seg(off, segRuns)
				nd, ns := seg(on, segRuns)
				offTot += od
				onTot += nd
				offSteps += os
				onSteps += ns
				ratios = append(ratios, float64(od)/float64(nd))
			}
			sort.Float64s(ratios)
			med := ratios[len(ratios)/2]
			t.Logf("%s[fastpath]: pairs=%d median speedup=%.3f p25=%.3f p75=%.3f off=%.1fM/s on=%.1fM/s hits=%d slow=%d",
				name, pairs, med, ratios[len(ratios)/4], ratios[3*len(ratios)/4],
				float64(offSteps)/offTot.Seconds()/1e6,
				float64(onSteps)/onTot.Seconds()/1e6,
				fp.Hits, fp.Slow)
		})
	}
}
